//! Step 1 of the pipeline: deleting duplicate queries (§5.2).
//!
//! Duplicates are identical statements (after text normalization — see
//! [`sqlog_skeleton::normalize_sql_text`]) from the same user within a small
//! time window. They are unintended re-submissions — web-form reloads or
//! application errors — and stand for the *same* information need, so they
//! are removed before any analysis. The threshold is configurable and
//! `None` means "unrestricted" (Table 4's last row).
//!
//! Deduplication is keyed by `(user, statement fingerprint)`, so the log
//! partitions cleanly by user: [`dedup_view`] shards the scan across users
//! and merges the per-shard survivors back into log order, producing exactly
//! the sequential result for any thread count. The output is a [`LogView`]
//! — an index vector over the input — so no [`LogEntry`] (or its statement
//! `String`) is ever cloned on this path.

use crate::fault;
use crate::shard::{
    balance_chunks, guarded, resolve_threads, run_shards_traced, whole_range, ShardTrace,
};
use sqlog_log::{LogView, QueryLog};
use sqlog_obs::{Recorder, SpanId};
use sqlog_skeleton::{dedup_shape_scan, text_fingerprint, Fingerprint, FnvHashMap, RawKey};

/// Outcome statistics of duplicate removal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DedupStats {
    /// Entries examined.
    pub input: usize,
    /// Entries removed as duplicates.
    pub removed: usize,
    /// Entries kept.
    pub kept: usize,
    /// Poison entries skipped during degraded (per-record) re-runs of
    /// panicked shards.
    pub poison: usize,
    /// Shards whose worker panicked and was recovered per-record.
    pub degraded_shards: usize,
}

/// First-occurrence state of one `(user, shape)` prefilter bucket.
enum Slot {
    /// Exactly one entry with this shape so far — its view position. Its
    /// fingerprint has not been computed yet (it cannot have duplicated
    /// anything, and nothing has duplicated it).
    Pending(u32),
    /// The shape repeated at least once; the bucket's fingerprints live in
    /// `last_seen` from here on.
    Materialized,
}

/// Per-shard result of a dedup scan.
struct ShardScan {
    /// Kept view positions, in log order within the shard's users.
    kept: Vec<u32>,
    /// Poison records skipped (degraded re-runs only).
    poison: usize,
    /// Records that were kept on shape novelty alone, with no
    /// normalization/fingerprint work at all.
    prefilter_hits: u64,
    /// Records whose shape had been seen before and that therefore took the
    /// full fingerprint path.
    prefilter_misses: u64,
    /// 1 when this shard's probe found too few fresh shapes and retired its
    /// prefilter mid-scan.
    prefilter_bailout: u64,
}

/// Prefilter-path records examined before a shard decides whether its
/// prefilter pays for itself.
const PREFILTER_PROBE: u64 = 4096;

/// True when the probe window says to retire the prefilter: a miss costs a
/// second normalization pass (shape scan *and* fingerprint), so the filter
/// only breaks even when nearly every record opens a fresh bucket. More
/// than 1/16 repeats caps the possible saving below the scan overhead.
fn probe_failed(hits: u64, misses: u64) -> bool {
    hits + misses >= PREFILTER_PROBE && misses * 16 > hits + misses
}

/// Retires a shard's prefilter mid-scan: every [`Slot::Pending`] bucket gets
/// the fingerprint stamp it had deferred (in view order, each with its own
/// timestamp — exactly what lazy materialization would have produced), and
/// the bucket map is dropped. From here on the scan *is* the exact path.
fn bail_out(view: &LogView<'_>, uids: &[u32], st: &mut ScanState) {
    let mut pending: Vec<u32> = st
        .shapes
        .values()
        .filter_map(|s| match s {
            Slot::Pending(j) => Some(*j),
            Slot::Materialized => None,
        })
        .collect();
    pending.sort_unstable();
    for j in pending {
        let e = view.entry(j as usize);
        st.last_seen.insert(
            (uids[j as usize], text_fingerprint(&e.statement)),
            e.timestamp.millis(),
        );
    }
    st.shapes = FnvHashMap::default();
}

/// [`bail_out`] for degraded re-runs: each deferred fingerprint runs inside
/// its own panic guard; a poison record simply keeps its stamp missing, as
/// the lazy path would have.
fn bail_out_isolated(view: &LogView<'_>, uids: &[u32], st: &mut ScanState) {
    let mut pending: Vec<u32> = st
        .shapes
        .values()
        .filter_map(|s| match s {
            Slot::Pending(j) => Some(*j),
            Slot::Materialized => None,
        })
        .collect();
    pending.sort_unstable();
    for j in pending {
        let e = view.entry(j as usize);
        if let Some(fp) = guarded(|| text_fingerprint(&e.statement)) {
            st.last_seen
                .insert((uids[j as usize], fp), e.timestamp.millis());
        }
    }
    st.shapes = FnvHashMap::default();
}

/// Shared dedup state for one scan: the shape prefilter buckets plus the
/// fingerprint timestamps of every materialized bucket.
#[derive(Default)]
struct ScanState {
    shapes: FnvHashMap<(u32, RawKey), Slot>,
    last_seen: FnvHashMap<(u32, Fingerprint), i64>,
}

/// Full-path duplicate decision for one record whose fingerprint is known.
/// Always records the latest occurrence — kept *or* removed — so a burst of
/// reloads collapses to its first statement (chain collapse).
fn is_dup(
    last_seen: &mut FnvHashMap<(u32, Fingerprint), i64>,
    uid: u32,
    fp: Fingerprint,
    now: i64,
    threshold_ms: Option<u64>,
) -> bool {
    let dup = match last_seen.get(&(uid, fp)) {
        Some(&prev) => match threshold_ms {
            Some(t) => (now - prev) as u64 <= t,
            None => true,
        },
        None => false,
    };
    last_seen.insert((uid, fp), now);
    dup
}

/// Sequential scan over one user-partition of the view: positions whose
/// entry repeats the user's previous identical statement within the
/// threshold are duplicates. `uids[i]` identifies the user of position `i`;
/// only positions with `uid_range.contains(uids[i])` are examined.
///
/// With `prefilter` on, each record's allocation-free shape key
/// ([`dedup_shape_scan`]) is consulted first. Equal normalized text implies
/// an equal shape key, so a never-before-seen shape proves the record
/// duplicates nothing and is kept without normalization or fingerprinting.
/// The first record of a bucket stays [`Slot::Pending`] until the shape
/// repeats; only then is its fingerprint computed (lazily, with its own
/// timestamp — valid because no same-shape record ran in between) and the
/// bucket falls back to the exact fingerprint path. Shape collisions between
/// *different* normalized texts (literals collapse into placeholders) only
/// cost that fallback — they can never remove a non-duplicate.
///
/// Because a repeated shape pays *two* normalization passes, the prefilter is
/// adaptive: after [`PREFILTER_PROBE`] records, a shard whose fresh-bucket
/// rate is too low to pay for the extra scans retires it ([`bail_out`]) and
/// finishes on the exact path — the outputs are identical either way, only
/// the cost moves.
fn scan_partition(
    view: &LogView<'_>,
    uids: &[u32],
    uid_range: std::ops::Range<u32>,
    threshold_ms: Option<u64>,
    prefilter: bool,
) -> ShardScan {
    let fault = fault::armed("dedup");
    let mut st = ScanState::default();
    let mut kept = Vec::new();
    let mut hits = 0u64;
    let mut misses = 0u64;
    let mut prefilter = prefilter;
    let mut bailout = 0u64;
    for (i, &uid) in uids.iter().enumerate() {
        if !uid_range.contains(&uid) {
            continue;
        }
        let e = view.entry(i);
        fault::trip(&fault, &e.statement);
        if prefilter && probe_failed(hits, misses) {
            bail_out(view, uids, &mut st);
            prefilter = false;
            bailout = 1;
        }
        if prefilter {
            match st.shapes.entry((uid, dedup_shape_scan(&e.statement))) {
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(Slot::Pending(i as u32));
                    kept.push(i as u32);
                    hits += 1;
                    continue;
                }
                std::collections::hash_map::Entry::Occupied(mut slot) => {
                    if let Slot::Pending(j) = *slot.get() {
                        let first = view.entry(j as usize);
                        st.last_seen.insert(
                            (uid, text_fingerprint(&first.statement)),
                            first.timestamp.millis(),
                        );
                        slot.insert(Slot::Materialized);
                    }
                    misses += 1;
                }
            }
        }
        let fp = text_fingerprint(&e.statement);
        let now = e.timestamp.millis();
        if !is_dup(&mut st.last_seen, uid, fp, now, threshold_ms) {
            kept.push(i as u32);
        }
    }
    ShardScan {
        kept,
        poison: 0,
        prefilter_hits: hits,
        prefilter_misses: misses,
        prefilter_bailout: bailout,
    }
}

/// Degraded re-run of [`scan_partition`] after its worker panicked: every
/// step that runs untrusted statement text (the injected trip, the shape
/// scan, each fingerprint) is wrapped in its own panic guard, so exactly the
/// poison records are skipped (they contribute neither a kept position, nor
/// a shape bucket, nor a `last_seen` stamp) and everything around them
/// dedups normally. Map updates happen only between guards, so a panic
/// never leaves partial state behind.
fn scan_partition_isolated(
    view: &LogView<'_>,
    uids: &[u32],
    uid_range: std::ops::Range<u32>,
    threshold_ms: Option<u64>,
    prefilter: bool,
) -> ShardScan {
    let fault = fault::armed("dedup");
    let mut st = ScanState::default();
    let mut kept = Vec::new();
    let mut poison = 0usize;
    let mut hits = 0u64;
    let mut misses = 0u64;
    let mut prefilter = prefilter;
    let mut bailout = 0u64;
    for (i, &uid) in uids.iter().enumerate() {
        if !uid_range.contains(&uid) {
            continue;
        }
        let e = view.entry(i);
        if prefilter && probe_failed(hits, misses) {
            bail_out_isolated(view, uids, &mut st);
            prefilter = false;
            bailout = 1;
        }
        if prefilter {
            let Some(shape) = guarded(|| {
                fault::trip(&fault, &e.statement);
                dedup_shape_scan(&e.statement)
            }) else {
                poison += 1;
                continue;
            };
            match st.shapes.entry((uid, shape)) {
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(Slot::Pending(i as u32));
                    kept.push(i as u32);
                    hits += 1;
                    continue;
                }
                std::collections::hash_map::Entry::Occupied(mut slot) => {
                    if let Slot::Pending(j) = *slot.get() {
                        // The bucket's first entry already passed its own
                        // guard; its fingerprint is pure, but guard it anyway
                        // so a panic here poisons neither record's state.
                        let first = view.entry(j as usize);
                        if let Some(fp0) = guarded(|| text_fingerprint(&first.statement)) {
                            st.last_seen.insert((uid, fp0), first.timestamp.millis());
                        }
                        slot.insert(Slot::Materialized);
                    }
                    misses += 1;
                }
            }
            let Some(fp) = guarded(|| text_fingerprint(&e.statement)) else {
                poison += 1;
                continue;
            };
            let now = e.timestamp.millis();
            if !is_dup(&mut st.last_seen, uid, fp, now, threshold_ms) {
                kept.push(i as u32);
            }
        } else {
            let Some(fp) = guarded(|| {
                fault::trip(&fault, &e.statement);
                text_fingerprint(&e.statement)
            }) else {
                poison += 1;
                continue;
            };
            let now = e.timestamp.millis();
            if !is_dup(&mut st.last_seen, uid, fp, now, threshold_ms) {
                kept.push(i as u32);
            }
        }
    }
    ShardScan {
        kept,
        poison,
        prefilter_hits: hits,
        prefilter_misses: misses,
        prefilter_bailout: bailout,
    }
}

/// Removes duplicates from a log view, returning the surviving entries as a
/// new view over the same base log (no entry clones) plus statistics.
///
/// An entry is a duplicate when the same user issued a textually identical
/// statement at most `threshold_ms` earlier — where "earlier" compares
/// against the most recent occurrence, kept *or* removed, so a burst of
/// reloads collapses to its first statement. A large number of removals can
/// indicate an application refactoring, which is why the count is reported
/// (§5.2).
///
/// `threads == 0` uses one thread per available core; since users are
/// independent under the `(user, fingerprint)` key, the scan shards by user
/// and the merged result is identical for every thread count.
pub fn dedup_view<'a>(
    view: &LogView<'a>,
    threshold_ms: Option<u64>,
    threads: usize,
) -> (LogView<'a>, DedupStats) {
    dedup_view_traced(
        view,
        threshold_ms,
        threads,
        true,
        &Recorder::disabled(),
        None,
    )
}

/// [`dedup_view`] with observability: per-shard spans (`"dedup.shard"`,
/// parented under `parent`), a shard-latency histogram and outcome counters
/// land in `rec`. The deduplicated view and statistics are identical to the
/// untraced call. `prefilter` toggles the shape-key prefilter (see
/// [`scan_partition`]); the output is byte-identical either way — the knob
/// exists for A/B timing runs.
pub fn dedup_view_traced<'a>(
    view: &LogView<'a>,
    threshold_ms: Option<u64>,
    threads: usize,
    prefilter: bool,
    rec: &Recorder,
    parent: Option<SpanId>,
) -> (LogView<'a>, DedupStats) {
    debug_assert!(view.is_time_sorted(), "dedup requires a time-sorted log");
    let n = view.len();
    let threads = resolve_threads(threads).min(n.max(1));

    // Partition by user: intern user keys by first appearance.
    let mut uid_of: FnvHashMap<&str, u32> = FnvHashMap::default();
    let mut uids: Vec<u32> = Vec::with_capacity(n);
    let mut counts: Vec<u64> = Vec::new();
    for i in 0..n {
        let key = view.entry(i).user_key();
        let next = counts.len() as u32;
        let uid = *uid_of.entry(key).or_insert(next);
        if uid == next {
            counts.push(0);
        }
        counts[uid as usize] += 1;
        uids.push(uid);
    }

    let ranges = if threads <= 1 || counts.len() <= 1 {
        whole_range(counts.len())
    } else {
        balance_chunks(&counts, threads)
    };
    let uids = &uids;
    let counts = &counts;
    let (shards, degraded) = run_shards_traced(
        ranges,
        ShardTrace {
            rec,
            parent,
            span_name: "dedup.shard",
            hist_name: "dedup.shard_us",
        },
        // Work units = entries belonging to the shard's user range.
        |r| counts[r.clone()].iter().sum(),
        |r| {
            scan_partition(
                view,
                uids,
                r.start as u32..r.end as u32,
                threshold_ms,
                prefilter,
            )
        },
        |r| {
            scan_partition_isolated(
                view,
                uids,
                r.start as u32..r.end as u32,
                threshold_ms,
                prefilter,
            )
        },
    );
    let mut poison = 0usize;
    let mut prefilter_hits = 0u64;
    let mut prefilter_misses = 0u64;
    let mut prefilter_bailouts = 0u64;
    // Per-shard survivors are disjoint view positions; sorting restores
    // global log order, making the merge independent of sharding.
    let mut kept: Vec<u32> = Vec::new();
    for shard in shards {
        kept.extend(shard.kept);
        poison += shard.poison;
        prefilter_hits += shard.prefilter_hits;
        prefilter_misses += shard.prefilter_misses;
        prefilter_bailouts += shard.prefilter_bailout;
    }
    kept.sort_unstable();

    let stats = DedupStats {
        input: n,
        removed: n - kept.len() - poison,
        kept: kept.len(),
        poison,
        degraded_shards: degraded,
    };
    rec.counter("dedup.input", stats.input as u64);
    rec.counter("dedup.removed", stats.removed as u64);
    rec.counter("dedup.kept", stats.kept as u64);
    rec.counter("dedup.poison_records", stats.poison as u64);
    rec.counter("dedup.degraded_shards", stats.degraded_shards as u64);
    rec.counter("dedup.prefilter_hits", prefilter_hits);
    rec.counter("dedup.prefilter_misses", prefilter_misses);
    rec.counter("dedup.prefilter_bailouts", prefilter_bailouts);
    (view.select(kept), stats)
}

/// Removes duplicates, returning the pre-cleaned log and statistics.
///
/// Compatibility wrapper around [`dedup_view`]: runs single-threaded and
/// materializes the surviving entries into an owned [`QueryLog`].
pub fn dedup(log: &QueryLog, threshold_ms: Option<u64>) -> (QueryLog, DedupStats) {
    let (view, stats) = dedup_view(&LogView::identity(log), threshold_ms, 1);
    (view.to_log(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlog_log::{LogEntry, Timestamp};

    fn entry(id: u64, ms: i64, user: &str, stmt: &str) -> LogEntry {
        LogEntry::minimal(id, stmt, Timestamp::from_millis(ms)).with_user(user)
    }

    #[test]
    fn removes_sub_threshold_repeats() {
        let log = QueryLog::from_entries(vec![
            entry(0, 0, "a", "SELECT 1"),
            entry(1, 500, "a", "SELECT 1"),
            entry(2, 5_000, "a", "SELECT 1"),
        ]);
        let (clean, stats) = dedup(&log, Some(1_000));
        assert_eq!(stats.removed, 1);
        assert_eq!(clean.len(), 2);
        let ids: Vec<_> = clean.entries.iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![0, 2]);
    }

    #[test]
    fn chains_collapse_to_the_first() {
        // 0 ─ 900ms ─ 1800ms: each repeat is within 1s of the previous one.
        let log = QueryLog::from_entries(vec![
            entry(0, 0, "a", "SELECT 1"),
            entry(1, 900, "a", "SELECT 1"),
            entry(2, 1_800, "a", "SELECT 1"),
        ]);
        let (clean, stats) = dedup(&log, Some(1_000));
        assert_eq!(stats.removed, 2);
        assert_eq!(clean.len(), 1);
    }

    #[test]
    fn different_users_never_dedup() {
        let log = QueryLog::from_entries(vec![
            entry(0, 0, "a", "SELECT 1"),
            entry(1, 100, "b", "SELECT 1"),
        ]);
        let (_, stats) = dedup(&log, Some(1_000));
        assert_eq!(stats.removed, 0);
    }

    #[test]
    fn unrestricted_threshold_removes_all_repeats() {
        let log = QueryLog::from_entries(vec![
            entry(0, 0, "a", "SELECT 1"),
            entry(1, 86_400_000, "a", "SELECT 1"),
            entry(2, 0, "a", "SELECT 2"),
        ]);
        let mut log = log;
        log.sort_by_time();
        let (clean, stats) = dedup(&log, None);
        assert_eq!(stats.removed, 1);
        assert_eq!(clean.len(), 2);
    }

    #[test]
    fn whitespace_and_case_variants_are_duplicates() {
        let log = QueryLog::from_entries(vec![
            entry(0, 0, "a", "SELECT objid FROM photoprimary WHERE x = 1"),
            entry(1, 300, "a", "select  OBJID\nfrom photoprimary where x = 1"),
        ]);
        let (_, stats) = dedup(&log, Some(1_000));
        assert_eq!(stats.removed, 1);
    }

    #[test]
    fn different_constants_are_not_duplicates() {
        let log = QueryLog::from_entries(vec![
            entry(0, 0, "a", "SELECT a FROM t WHERE x = 1"),
            entry(1, 100, "a", "SELECT a FROM t WHERE x = 2"),
        ]);
        let (_, stats) = dedup(&log, Some(1_000));
        assert_eq!(stats.removed, 0);
    }

    #[test]
    fn higher_threshold_removes_at_least_as_much() {
        // Monotonicity property behind Table 4.
        let mut entries = Vec::new();
        for i in 0..50i64 {
            entries.push(entry(i as u64, i * 700, "a", "SELECT 1"));
            entries.push(entry(100 + i as u64, i * 700 + 350, "a", "SELECT 2"));
        }
        let mut log = QueryLog::from_entries(entries);
        log.sort_by_time();
        let mut prev_removed = 0;
        for t in [0u64, 500, 1_000, 2_000, 5_000] {
            let (_, stats) = dedup(&log, Some(t));
            assert!(stats.removed >= prev_removed, "threshold {t}");
            prev_removed = stats.removed;
        }
        let (_, unrestricted) = dedup(&log, None);
        assert!(unrestricted.removed >= prev_removed);
    }

    #[test]
    fn sharded_dedup_equals_sequential() {
        // Many interleaved users with in-user repeat chains.
        let mut entries = Vec::new();
        let mut id = 0u64;
        for step in 0..200i64 {
            for u in 0..7 {
                let user = format!("10.0.0.{u}");
                let stmt = format!("SELECT a FROM t WHERE x = {}", step % (u + 2));
                entries.push(entry(id, step * 400, &user, &stmt));
                id += 1;
            }
        }
        let mut log = QueryLog::from_entries(entries);
        log.sort_by_time();
        let view = LogView::identity(&log);
        let (seq, seq_stats) = dedup_view(&view, Some(1_000), 1);
        for threads in [2, 3, 8] {
            let (par, par_stats) = dedup_view(&view, Some(1_000), threads);
            assert_eq!(seq_stats, par_stats, "threads {threads}");
            let a: Vec<u64> = seq.iter().map(|e| e.id).collect();
            let b: Vec<u64> = par.iter().map(|e| e.id).collect();
            assert_eq!(a, b, "threads {threads}");
        }
    }

    #[test]
    fn prefilter_and_exact_path_agree_on_hostile_text() {
        // Statements picked so that shapes collide across different texts
        // (literals collapse) and normalize-equal pairs differ in raw bytes
        // (trailing semicolons, comments, case) — the prefilter must neither
        // split true duplicates nor merge distinct statements.
        let stmts = [
            "SELECT a FROM t WHERE x = 1",
            "SELECT a FROM t WHERE x = 1;",
            "select A from T where X = 1 -- c",
            "SELECT a FROM t WHERE x = 2",
            "SELECT a/*gap*/FROM t WHERE x = 1",
            "SELECT 'it''s' FROM t",
            "SELECT 'its' FROM t",
            "SELECT 'oops",
            "INSERT INTO t VALUES (1)",
        ];
        let mut entries = Vec::new();
        for (i, chunk) in (0..400u64).map(|i| (i, i % 3)).collect::<Vec<_>>().iter() {
            let user = format!("u{chunk}");
            let stmt = stmts[(*i as usize * 7) % stmts.len()];
            entries.push(entry(*i, (*i as i64) * 137, &user, stmt));
        }
        let mut log = QueryLog::from_entries(entries);
        log.sort_by_time();
        let view = LogView::identity(&log);
        for threshold in [Some(0u64), Some(500), Some(10_000), None] {
            for threads in [1usize, 4] {
                let rec = Recorder::disabled();
                let (on, on_stats) = dedup_view_traced(&view, threshold, threads, true, &rec, None);
                let (off, off_stats) =
                    dedup_view_traced(&view, threshold, threads, false, &rec, None);
                assert_eq!(on_stats, off_stats, "threshold {threshold:?}");
                let a: Vec<u64> = on.iter().map(|e| e.id).collect();
                let b: Vec<u64> = off.iter().map(|e| e.id).collect();
                assert_eq!(a, b, "threshold {threshold:?} threads {threads}");
            }
        }
    }

    #[test]
    fn prefilter_counters_partition_the_input() {
        let log = QueryLog::from_entries(vec![
            entry(0, 0, "a", "SELECT 1"),   // fresh shape: hit
            entry(1, 100, "a", "SELECT 1"), // repeat shape: miss (dup)
            entry(2, 200, "a", "SELECT 2"), // same shape (literal): miss
            entry(3, 300, "a", "SELECT x"), // fresh shape: hit
            entry(4, 400, "b", "SELECT 1"), // other user, fresh: hit
        ]);
        let rec = Recorder::new();
        let view = LogView::identity(&log);
        let (_, stats) = dedup_view_traced(&view, Some(1_000), 1, true, &rec, None);
        assert_eq!(stats.removed, 1);
        let counters = rec.counters();
        assert_eq!(counters.get("dedup.prefilter_hits"), Some(&3));
        assert_eq!(counters.get("dedup.prefilter_misses"), Some(&2));
    }

    #[test]
    fn low_diversity_scans_bail_out_and_still_match_the_exact_path() {
        // Three shapes cycling over literal values: past the probe window
        // almost every record repeats a shape, so the shard must retire its
        // prefilter — and produce the exact path's output to the byte.
        let n = super::PREFILTER_PROBE as usize + 500;
        let mut entries = Vec::new();
        for i in 0..n {
            let stmt = match i % 3 {
                0 => format!("SELECT a FROM t WHERE x = {}", i % 97),
                1 => format!("SELECT b FROM u WHERE s = '{}'", i % 89),
                _ => format!("SELECT c FROM v WHERE y = {} AND z = 0", i % 83),
            };
            entries.push(entry(i as u64, (i as i64) * 211, "a", &stmt));
        }
        let log = QueryLog::from_entries(entries);
        let view = LogView::identity(&log);
        let rec = Recorder::new();
        let (on, on_stats) = dedup_view_traced(&view, Some(1_000), 1, true, &rec, None);
        let (off, off_stats) =
            dedup_view_traced(&view, Some(1_000), 1, false, &Recorder::disabled(), None);
        assert_eq!(on_stats, off_stats);
        let a: Vec<u64> = on.iter().map(|e| e.id).collect();
        let b: Vec<u64> = off.iter().map(|e| e.id).collect();
        assert_eq!(a, b);
        let counters = rec.counters();
        assert_eq!(counters.get("dedup.prefilter_bailouts"), Some(&1));
        // Post-bailout records are exact-path, so hits + misses stay at the
        // probe window.
        let probed = counters["dedup.prefilter_hits"] + counters["dedup.prefilter_misses"];
        assert_eq!(probed, super::PREFILTER_PROBE);
    }

    #[test]
    fn diverse_scans_keep_the_prefilter_past_the_probe() {
        // Every statement is a fresh shape — the probe must not bail out.
        let n = super::PREFILTER_PROBE as usize + 500;
        let mut entries = Vec::new();
        for i in 0..n {
            let stmt = format!("SELECT c{i} FROM t{i} WHERE x = 1");
            entries.push(entry(i as u64, (i as i64) * 211, "a", &stmt));
        }
        let log = QueryLog::from_entries(entries);
        let view = LogView::identity(&log);
        let rec = Recorder::new();
        let (_, stats) = dedup_view_traced(&view, Some(1_000), 1, true, &rec, None);
        assert_eq!(stats.removed, 0);
        let counters = rec.counters();
        assert_eq!(
            counters
                .get("dedup.prefilter_bailouts")
                .copied()
                .unwrap_or(0),
            0
        );
        assert_eq!(counters["dedup.prefilter_hits"], n as u64);
    }

    #[test]
    fn view_output_borrows_the_base_log() {
        let log = QueryLog::from_entries(vec![
            entry(0, 0, "a", "SELECT 1"),
            entry(1, 100, "a", "SELECT 1"),
            entry(2, 5_000, "a", "SELECT 2"),
        ]);
        let view = LogView::identity(&log);
        let (clean, stats) = dedup_view(&view, Some(1_000), 1);
        assert_eq!(stats.removed, 1);
        assert_eq!(clean.len(), 2);
        // The surviving positions map back into the original log.
        assert_eq!(clean.base_index(0), 0);
        assert_eq!(clean.base_index(1), 2);
        assert!(std::ptr::eq(clean.base(), &log));
    }
}
