//! Step 1 of the pipeline: deleting duplicate queries (§5.2).
//!
//! Duplicates are identical statements (after text normalization — see
//! [`sqlog_skeleton::normalize_sql_text`]) from the same user within a small
//! time window. They are unintended re-submissions — web-form reloads or
//! application errors — and stand for the *same* information need, so they
//! are removed before any analysis. The threshold is configurable and
//! `None` means "unrestricted" (Table 4's last row).
//!
//! Deduplication is keyed by `(user, statement fingerprint)`, so the log
//! partitions cleanly by user: [`dedup_view`] shards the scan across users
//! and merges the per-shard survivors back into log order, producing exactly
//! the sequential result for any thread count. The output is a [`LogView`]
//! — an index vector over the input — so no [`LogEntry`] (or its statement
//! `String`) is ever cloned on this path.

use crate::fault;
use crate::shard::{
    balance_chunks, guarded, resolve_threads, run_shards_traced, whole_range, ShardTrace,
};
use sqlog_log::{LogView, QueryLog};
use sqlog_obs::{Recorder, SpanId};
use sqlog_skeleton::{text_fingerprint, Fingerprint};
use std::collections::HashMap;

/// Outcome statistics of duplicate removal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DedupStats {
    /// Entries examined.
    pub input: usize,
    /// Entries removed as duplicates.
    pub removed: usize,
    /// Entries kept.
    pub kept: usize,
    /// Poison entries skipped during degraded (per-record) re-runs of
    /// panicked shards.
    pub poison: usize,
    /// Shards whose worker panicked and was recovered per-record.
    pub degraded_shards: usize,
}

/// Sequential scan over one user-partition of the view: positions whose
/// entry repeats the user's previous identical statement within the
/// threshold are duplicates. `uids[i]` identifies the user of position `i`;
/// only positions with `uid_range.contains(uids[i])` are examined.
fn scan_partition(
    view: &LogView<'_>,
    uids: &[u32],
    uid_range: std::ops::Range<u32>,
    threshold_ms: Option<u64>,
) -> Vec<u32> {
    let fault = fault::armed("dedup");
    let mut last_seen: HashMap<(u32, Fingerprint), i64> = HashMap::new();
    let mut kept = Vec::new();
    for (i, &uid) in uids.iter().enumerate() {
        if !uid_range.contains(&uid) {
            continue;
        }
        let e = view.entry(i);
        fault::trip(&fault, &e.statement);
        let fp = text_fingerprint(&e.statement);
        let now = e.timestamp.millis();
        let dup = match last_seen.get(&(uid, fp)) {
            Some(&prev) => match threshold_ms {
                Some(t) => (now - prev) as u64 <= t,
                None => true,
            },
            None => false,
        };
        // Always record the latest occurrence — kept *or* removed — so a
        // burst of reloads collapses to its first statement (chain
        // collapse).
        last_seen.insert((uid, fp), now);
        if !dup {
            kept.push(i as u32);
        }
    }
    kept
}

/// Degraded re-run of [`scan_partition`] after its worker panicked: every
/// record is processed under a panic guard, so exactly the poison records
/// are skipped (they contribute neither a kept position nor a `last_seen`
/// stamp) and everything around them dedups normally. Returns the kept
/// positions plus the number of poison records skipped.
fn scan_partition_isolated(
    view: &LogView<'_>,
    uids: &[u32],
    uid_range: std::ops::Range<u32>,
    threshold_ms: Option<u64>,
) -> (Vec<u32>, usize) {
    let fault = fault::armed("dedup");
    let mut last_seen: HashMap<(u32, Fingerprint), i64> = HashMap::new();
    let mut kept = Vec::new();
    let mut poison = 0usize;
    for (i, &uid) in uids.iter().enumerate() {
        if !uid_range.contains(&uid) {
            continue;
        }
        let e = view.entry(i);
        // Fingerprinting is the only step that runs untrusted input; guard
        // it (plus the injected trip) and skip the record on panic. The
        // `last_seen` update below runs only for healthy records, so poison
        // records leave no partial state behind.
        let Some(fp) = guarded(|| {
            fault::trip(&fault, &e.statement);
            text_fingerprint(&e.statement)
        }) else {
            poison += 1;
            continue;
        };
        let now = e.timestamp.millis();
        let dup = match last_seen.get(&(uid, fp)) {
            Some(&prev) => match threshold_ms {
                Some(t) => (now - prev) as u64 <= t,
                None => true,
            },
            None => false,
        };
        last_seen.insert((uid, fp), now);
        if !dup {
            kept.push(i as u32);
        }
    }
    (kept, poison)
}

/// Removes duplicates from a log view, returning the surviving entries as a
/// new view over the same base log (no entry clones) plus statistics.
///
/// An entry is a duplicate when the same user issued a textually identical
/// statement at most `threshold_ms` earlier — where "earlier" compares
/// against the most recent occurrence, kept *or* removed, so a burst of
/// reloads collapses to its first statement. A large number of removals can
/// indicate an application refactoring, which is why the count is reported
/// (§5.2).
///
/// `threads == 0` uses one thread per available core; since users are
/// independent under the `(user, fingerprint)` key, the scan shards by user
/// and the merged result is identical for every thread count.
pub fn dedup_view<'a>(
    view: &LogView<'a>,
    threshold_ms: Option<u64>,
    threads: usize,
) -> (LogView<'a>, DedupStats) {
    dedup_view_traced(view, threshold_ms, threads, &Recorder::disabled(), None)
}

/// [`dedup_view`] with observability: per-shard spans (`"dedup.shard"`,
/// parented under `parent`), a shard-latency histogram and outcome counters
/// land in `rec`. The deduplicated view and statistics are identical to the
/// untraced call.
pub fn dedup_view_traced<'a>(
    view: &LogView<'a>,
    threshold_ms: Option<u64>,
    threads: usize,
    rec: &Recorder,
    parent: Option<SpanId>,
) -> (LogView<'a>, DedupStats) {
    debug_assert!(view.is_time_sorted(), "dedup requires a time-sorted log");
    let n = view.len();
    let threads = resolve_threads(threads).min(n.max(1));

    // Partition by user: intern user keys by first appearance.
    let mut uid_of: HashMap<&str, u32> = HashMap::new();
    let mut uids: Vec<u32> = Vec::with_capacity(n);
    let mut counts: Vec<u64> = Vec::new();
    for i in 0..n {
        let key = view.entry(i).user_key();
        let next = counts.len() as u32;
        let uid = *uid_of.entry(key).or_insert(next);
        if uid == next {
            counts.push(0);
        }
        counts[uid as usize] += 1;
        uids.push(uid);
    }

    let ranges = if threads <= 1 || counts.len() <= 1 {
        whole_range(counts.len())
    } else {
        balance_chunks(&counts, threads)
    };
    let uids = &uids;
    let counts = &counts;
    let (shards, degraded) = run_shards_traced(
        ranges,
        ShardTrace {
            rec,
            parent,
            span_name: "dedup.shard",
            hist_name: "dedup.shard_us",
        },
        // Work units = entries belonging to the shard's user range.
        |r| counts[r.clone()].iter().sum(),
        |r| {
            (
                scan_partition(view, uids, r.start as u32..r.end as u32, threshold_ms),
                0usize,
            )
        },
        |r| scan_partition_isolated(view, uids, r.start as u32..r.end as u32, threshold_ms),
    );
    let mut poison = 0usize;
    // Per-shard survivors are disjoint view positions; sorting restores
    // global log order, making the merge independent of sharding.
    let mut kept: Vec<u32> = Vec::new();
    for (shard_kept, shard_poison) in shards {
        kept.extend(shard_kept);
        poison += shard_poison;
    }
    kept.sort_unstable();

    let stats = DedupStats {
        input: n,
        removed: n - kept.len() - poison,
        kept: kept.len(),
        poison,
        degraded_shards: degraded,
    };
    rec.counter("dedup.input", stats.input as u64);
    rec.counter("dedup.removed", stats.removed as u64);
    rec.counter("dedup.kept", stats.kept as u64);
    rec.counter("dedup.poison_records", stats.poison as u64);
    rec.counter("dedup.degraded_shards", stats.degraded_shards as u64);
    (view.select(kept), stats)
}

/// Removes duplicates, returning the pre-cleaned log and statistics.
///
/// Compatibility wrapper around [`dedup_view`]: runs single-threaded and
/// materializes the surviving entries into an owned [`QueryLog`].
pub fn dedup(log: &QueryLog, threshold_ms: Option<u64>) -> (QueryLog, DedupStats) {
    let (view, stats) = dedup_view(&LogView::identity(log), threshold_ms, 1);
    (view.to_log(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlog_log::{LogEntry, Timestamp};

    fn entry(id: u64, ms: i64, user: &str, stmt: &str) -> LogEntry {
        LogEntry::minimal(id, stmt, Timestamp::from_millis(ms)).with_user(user)
    }

    #[test]
    fn removes_sub_threshold_repeats() {
        let log = QueryLog::from_entries(vec![
            entry(0, 0, "a", "SELECT 1"),
            entry(1, 500, "a", "SELECT 1"),
            entry(2, 5_000, "a", "SELECT 1"),
        ]);
        let (clean, stats) = dedup(&log, Some(1_000));
        assert_eq!(stats.removed, 1);
        assert_eq!(clean.len(), 2);
        let ids: Vec<_> = clean.entries.iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![0, 2]);
    }

    #[test]
    fn chains_collapse_to_the_first() {
        // 0 ─ 900ms ─ 1800ms: each repeat is within 1s of the previous one.
        let log = QueryLog::from_entries(vec![
            entry(0, 0, "a", "SELECT 1"),
            entry(1, 900, "a", "SELECT 1"),
            entry(2, 1_800, "a", "SELECT 1"),
        ]);
        let (clean, stats) = dedup(&log, Some(1_000));
        assert_eq!(stats.removed, 2);
        assert_eq!(clean.len(), 1);
    }

    #[test]
    fn different_users_never_dedup() {
        let log = QueryLog::from_entries(vec![
            entry(0, 0, "a", "SELECT 1"),
            entry(1, 100, "b", "SELECT 1"),
        ]);
        let (_, stats) = dedup(&log, Some(1_000));
        assert_eq!(stats.removed, 0);
    }

    #[test]
    fn unrestricted_threshold_removes_all_repeats() {
        let log = QueryLog::from_entries(vec![
            entry(0, 0, "a", "SELECT 1"),
            entry(1, 86_400_000, "a", "SELECT 1"),
            entry(2, 0, "a", "SELECT 2"),
        ]);
        let mut log = log;
        log.sort_by_time();
        let (clean, stats) = dedup(&log, None);
        assert_eq!(stats.removed, 1);
        assert_eq!(clean.len(), 2);
    }

    #[test]
    fn whitespace_and_case_variants_are_duplicates() {
        let log = QueryLog::from_entries(vec![
            entry(0, 0, "a", "SELECT objid FROM photoprimary WHERE x = 1"),
            entry(1, 300, "a", "select  OBJID\nfrom photoprimary where x = 1"),
        ]);
        let (_, stats) = dedup(&log, Some(1_000));
        assert_eq!(stats.removed, 1);
    }

    #[test]
    fn different_constants_are_not_duplicates() {
        let log = QueryLog::from_entries(vec![
            entry(0, 0, "a", "SELECT a FROM t WHERE x = 1"),
            entry(1, 100, "a", "SELECT a FROM t WHERE x = 2"),
        ]);
        let (_, stats) = dedup(&log, Some(1_000));
        assert_eq!(stats.removed, 0);
    }

    #[test]
    fn higher_threshold_removes_at_least_as_much() {
        // Monotonicity property behind Table 4.
        let mut entries = Vec::new();
        for i in 0..50i64 {
            entries.push(entry(i as u64, i * 700, "a", "SELECT 1"));
            entries.push(entry(100 + i as u64, i * 700 + 350, "a", "SELECT 2"));
        }
        let mut log = QueryLog::from_entries(entries);
        log.sort_by_time();
        let mut prev_removed = 0;
        for t in [0u64, 500, 1_000, 2_000, 5_000] {
            let (_, stats) = dedup(&log, Some(t));
            assert!(stats.removed >= prev_removed, "threshold {t}");
            prev_removed = stats.removed;
        }
        let (_, unrestricted) = dedup(&log, None);
        assert!(unrestricted.removed >= prev_removed);
    }

    #[test]
    fn sharded_dedup_equals_sequential() {
        // Many interleaved users with in-user repeat chains.
        let mut entries = Vec::new();
        let mut id = 0u64;
        for step in 0..200i64 {
            for u in 0..7 {
                let user = format!("10.0.0.{u}");
                let stmt = format!("SELECT a FROM t WHERE x = {}", step % (u + 2));
                entries.push(entry(id, step * 400, &user, &stmt));
                id += 1;
            }
        }
        let mut log = QueryLog::from_entries(entries);
        log.sort_by_time();
        let view = LogView::identity(&log);
        let (seq, seq_stats) = dedup_view(&view, Some(1_000), 1);
        for threads in [2, 3, 8] {
            let (par, par_stats) = dedup_view(&view, Some(1_000), threads);
            assert_eq!(seq_stats, par_stats, "threads {threads}");
            let a: Vec<u64> = seq.iter().map(|e| e.id).collect();
            let b: Vec<u64> = par.iter().map(|e| e.id).collect();
            assert_eq!(a, b, "threads {threads}");
        }
    }

    #[test]
    fn view_output_borrows_the_base_log() {
        let log = QueryLog::from_entries(vec![
            entry(0, 0, "a", "SELECT 1"),
            entry(1, 100, "a", "SELECT 1"),
            entry(2, 5_000, "a", "SELECT 2"),
        ]);
        let view = LogView::identity(&log);
        let (clean, stats) = dedup_view(&view, Some(1_000), 1);
        assert_eq!(stats.removed, 1);
        assert_eq!(clean.len(), 2);
        // The surviving positions map back into the original log.
        assert_eq!(clean.base_index(0), 0);
        assert_eq!(clean.base_index(1), 2);
        assert!(std::ptr::eq(clean.base(), &log));
    }
}
