//! Shared helpers for the per-user sharded pipeline stages.
//!
//! Every parallel stage follows the same recipe: split its work items
//! (users, sessions) into **contiguous** ranges of roughly equal total
//! weight, process each range on its own scoped thread, and merge the
//! per-range results in range order. Contiguity is what makes the merge
//! deterministic — concatenating range outputs reproduces the sequential
//! processing order, so the merged result is independent of the thread
//! count.

use sqlog_obs::{Recorder, SpanId};
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// Runs `f`, converting a panic into `None`.
///
/// The per-record/per-session recovery loops use this to skip exactly the
/// poisoned work item while keeping everything around it. `AssertUnwindSafe`
/// is sound here by convention: recovery callers either discard partially
/// mutated scratch state outright or mutate only append-only structures
/// whose partial updates are harmless (see each stage's recovery path).
pub fn guarded<T>(f: impl FnOnce() -> T) -> Option<T> {
    catch_unwind(AssertUnwindSafe(f)).ok()
}

/// Runs one shard of work per range on scoped threads, isolating panics:
/// a shard whose worker panics is re-run through `recover` on the calling
/// thread instead of aborting the stage.
///
/// Returns the per-range results **in range order** (so deterministic
/// merges keep working) plus the number of degraded (panicked-and-
/// recovered) shards. With a single range no thread is spawned — the work
/// runs on the calling thread under [`guarded`], so the sequential path
/// gets the same isolation as the parallel one.
///
/// Determinism note: a poison record panics wherever it lands, so *which
/// records end up skipped* is independent of the thread count; only the
/// degraded-shard count can vary with sharding (one poison record degrades
/// exactly the one shard that contains it).
pub fn run_shards_isolated<T, W, Rec>(
    ranges: Vec<Range<usize>>,
    work: W,
    mut recover: Rec,
) -> (Vec<T>, usize)
where
    T: Send,
    W: Fn(Range<usize>) -> T + Sync,
    Rec: FnMut(Range<usize>) -> T,
{
    let mut out: Vec<T> = Vec::with_capacity(ranges.len());
    let mut degraded = 0usize;
    if ranges.len() <= 1 {
        for r in ranges {
            match guarded(|| work(r.clone())) {
                Some(v) => out.push(v),
                None => {
                    degraded += 1;
                    out.push(recover(r));
                }
            }
        }
        return (out, degraded);
    }
    let mut retry: Vec<(usize, Range<usize>)> = Vec::new();
    std::thread::scope(|s| {
        let work = &work;
        let handles: Vec<_> = ranges
            .iter()
            .cloned()
            .map(|r| s.spawn(move || work(r)))
            .collect();
        for (i, (h, r)) in handles.into_iter().zip(ranges).enumerate() {
            match h.join() {
                Ok(v) => out.push(v),
                Err(_) => {
                    degraded += 1;
                    retry.push((i, r));
                }
            }
        }
    });
    // Re-run panicked shards on this thread, splicing each result back into
    // its range-order slot (ascending-slot inserts keep earlier slots valid).
    for (slot, r) in retry {
        out.insert(slot, recover(r));
    }
    (out, degraded)
}

/// Where a stage's shard observations go: the recorder, the stage span to
/// parent shard spans under, and the static names the stage publishes its
/// shard spans and latency histogram as (convention: `"<stage>.shard"` /
/// `"<stage>.shard_us"` — [`sqlog_obs::ObsReport`] groups on the suffix).
pub struct ShardTrace<'a> {
    /// The sink. Disabled → [`run_shards_traced`] degenerates to
    /// [`run_shards_isolated`] with zero extra work.
    pub rec: &'a Recorder,
    /// The enclosing stage span (captured on the coordinating thread before
    /// workers spawn — worker threads cannot see its thread-local stack).
    pub parent: Option<SpanId>,
    /// Shard span name, e.g. `"parse.shard"`.
    pub span_name: &'static str,
    /// Shard latency histogram name, e.g. `"parse.shard_us"`.
    pub hist_name: &'static str,
}

/// [`run_shards_isolated`] with per-shard observability: each shard's work
/// runs inside a span named [`ShardTrace::span_name`] carrying `shard`
/// (index) and `items` (work units, from `items_of`) fields, and its
/// wall-clock lands in the [`ShardTrace::hist_name`] histogram. Degraded
/// re-runs get their own span with a `degraded = 1` field, so recovery time
/// stays visible in the trace. Results are bit-identical to the untraced
/// call — instrumentation only observes.
pub fn run_shards_traced<T, W, Rec, I>(
    ranges: Vec<Range<usize>>,
    trace: ShardTrace<'_>,
    items_of: I,
    work: W,
    mut recover: Rec,
) -> (Vec<T>, usize)
where
    T: Send,
    W: Fn(Range<usize>) -> T + Sync,
    Rec: FnMut(Range<usize>) -> T,
    I: Fn(&Range<usize>) -> u64 + Sync,
{
    if !trace.rec.is_enabled() {
        return run_shards_isolated(ranges, work, recover);
    }
    // Ranges are contiguous and ordered, so a range's index is the position
    // of its start — recoverable inside the worker without threading an
    // index through `run_shards_isolated`'s signature.
    let starts: Vec<usize> = ranges.iter().map(|r| r.start).collect();
    let starts = &starts;
    let items_of = &items_of;
    let rec = trace.rec;
    run_shards_isolated(
        ranges,
        move |r| {
            let shard = starts.binary_search(&r.start).unwrap_or(0) as u64;
            let items = items_of(&r);
            let mut span = rec.span_in(trace.parent, trace.span_name);
            span.field("shard", shard);
            span.field("items", items);
            let t = Instant::now();
            let out = work(r);
            rec.histogram(trace.hist_name, t.elapsed().as_micros() as u64);
            rec.stage_add_items(items);
            out
        },
        move |r| {
            let shard = starts.binary_search(&r.start).unwrap_or(0) as u64;
            let items = items_of(&r);
            let mut span = rec.span_in(trace.parent, trace.span_name);
            span.field("shard", shard);
            span.field("items", items);
            span.field("degraded", 1u64);
            let out = recover(r);
            rec.stage_add_items(items);
            out
        },
    )
}

/// The single range covering `0..n` — the one-shard plan used by the
/// sequential paths of [`run_shards_isolated`].
// One shard covering everything is the intent, not a misspelled
// `(0..n).collect()`.
#[allow(clippy::single_range_in_vec_init)]
pub fn whole_range(n: usize) -> Vec<Range<usize>> {
    vec![0..n]
}

/// Resolves a `parallelism` knob to a concrete thread count.
///
/// `0` means one thread per available core; the result is clamped to
/// `1..=64`.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        requested
    }
    .clamp(1, 64)
}

/// Splits `weights.len()` items into at most `parts` contiguous, non-empty
/// ranges of roughly equal total weight (prefix-greedy).
///
/// Returns an empty vector for an empty input; otherwise the ranges cover
/// `0..weights.len()` exactly, in order.
pub fn balance_chunks(weights: &[u64], parts: usize) -> Vec<Range<usize>> {
    let n = weights.len();
    if n == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, n);
    let total: u64 = weights.iter().sum();
    let mut out: Vec<Range<usize>> = Vec::with_capacity(parts);
    let mut start = 0usize;
    let mut acc = 0u64;
    let mut used = 0u64;
    for (i, &w) in weights.iter().enumerate() {
        acc += w;
        let ranges_left = parts - out.len();
        if ranges_left > 1 {
            let target = (total - used) / ranges_left as u64;
            // Close the current range once it reaches its fair share — or
            // when the remaining items are exactly enough to give each
            // remaining range one item.
            let must_close = n - (i + 1) == ranges_left - 1;
            if must_close || acc >= target.max(1) {
                out.push(start..i + 1);
                used += acc;
                acc = 0;
                start = i + 1;
            }
        }
    }
    out.push(start..n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn covers(ranges: &[Range<usize>], n: usize) {
        let mut next = 0;
        for r in ranges {
            assert_eq!(r.start, next);
            assert!(r.end > r.start, "empty range");
            next = r.end;
        }
        assert_eq!(next, n);
    }

    #[test]
    fn single_part_is_whole() {
        assert_eq!(balance_chunks(&[1, 2, 3], 1), vec![0..3]);
    }

    #[test]
    fn empty_input_yields_no_ranges() {
        assert!(balance_chunks(&[], 4).is_empty());
    }

    #[test]
    fn more_parts_than_items_degrades_to_singletons() {
        let r = balance_chunks(&[5, 5], 8);
        covers(&r, 2);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn skewed_weights_balance() {
        // One heavy item up front should not starve later ranges.
        let weights = [100, 1, 1, 1, 1, 1, 1, 1];
        let r = balance_chunks(&weights, 4);
        covers(&r, weights.len());
        assert_eq!(r[0], 0..1);
    }

    #[test]
    fn uniform_weights_split_evenly() {
        let weights = vec![1u64; 100];
        let r = balance_chunks(&weights, 4);
        covers(&r, 100);
        assert_eq!(r.len(), 4);
        for chunk in &r {
            assert!(chunk.len() >= 20, "{chunk:?}");
        }
    }

    #[test]
    fn zero_weights_do_not_panic() {
        let r = balance_chunks(&[0, 0, 0, 0], 3);
        covers(&r, 4);
    }

    #[test]
    fn explicit_thread_counts_pass_through() {
        assert_eq!(resolve_threads(3), 3);
        assert_eq!(resolve_threads(1000), 64);
        assert!(resolve_threads(0) >= 1);
    }
}
