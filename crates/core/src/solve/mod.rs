//! Step 5 of the pipeline: solving antipatterns (§5.5).
//!
//! Instances are processed in order of appearance in the log; when instances
//! overlap, the earlier one wins and the later one is skipped (the paper:
//! "solving starts with the antipattern which appears in the log first").
//! Two output logs are built:
//!
//! * the **clean log**: solvable instances replaced by their rewrites,
//!   everything else kept, and
//! * the **removal log**: every query covered by *any* antipattern instance
//!   dropped (the §6.9 "removal" variant).

pub mod batch;
pub mod snc;
pub mod stifle;

use crate::detect::{AntipatternClass, AntipatternInstance, DetectCtx};
use crate::ext::SolverSet;
use sqlog_log::{LogEntry, QueryLog};

/// One applied rewrite: the original query sequence an instance covered and
/// the replacement statements the solver emitted for it.
///
/// This is the unit a semantic oracle consumes: for result-preserving
/// solvers (the Stifle family) the union of the originals' result sets must
/// equal the rewrites' result sets over any database instance.
#[derive(Debug, Clone)]
pub struct SolvedRewrite {
    /// The antipattern class of the solved instance.
    pub class: AntipatternClass,
    /// Original-log entry ids of the consumed queries, in log order.
    pub entry_ids: Vec<u64>,
    /// The consumed statements, verbatim, in log order.
    pub original_statements: Vec<String>,
    /// The replacement statements spliced into the clean log.
    pub rewritten_statements: Vec<String>,
}

/// Result of the solving step.
#[derive(Debug)]
pub struct SolveOutcome {
    /// The clean log (rewrites applied), time-sorted, ids re-sequenced.
    pub clean_log: QueryLog,
    /// The removal log (antipattern queries dropped).
    pub removal_log: QueryLog,
    /// Solvable instances actually rewritten.
    pub solved_instances: usize,
    /// Queries consumed by rewrites.
    pub solved_queries: usize,
    /// Replacement statements emitted.
    pub rewritten_statements: usize,
    /// Solvable instances skipped because an earlier instance had already
    /// consumed one of their queries.
    pub skipped_overlaps: usize,
    /// Every applied rewrite as an (original sequence, replacement) pair,
    /// in order of appearance in the log.
    pub rewrites: Vec<SolvedRewrite>,
}

/// Applies the solvers over the parsed log.
pub fn apply_solutions(
    ctx: &DetectCtx<'_>,
    instances: &[AntipatternInstance],
    solvers: &SolverSet<'_>,
) -> SolveOutcome {
    // Solving is sequential, so its observability is one span (nested under
    // the pipeline's "solve" stage span via the thread-local) plus outcome
    // counters at the end.
    let rec = &ctx.config.recorder;
    let mut span = rec.span("solve.apply");
    span.field("instances", instances.len() as u64);
    // Chaos-harness injection point: unlike the sharded stages, solving is
    // sequential and not panic-isolated, so this trip is meant for the
    // process-killing actions (`abort`/`stall`), not `panic`.
    let fault = crate::fault::armed("solve");
    if fault.is_some() {
        for inst in instances {
            for &ri in &inst.records {
                let e = ctx.log.entry(ctx.records[ri].entry_idx as usize);
                crate::fault::trip(&fault, &e.statement);
            }
        }
    }
    let n_records = ctx.records.len();
    let mut consumed = vec![false; n_records];
    let mut in_any_instance = vec![false; n_records];
    // Rewrites to splice in: (record index of the instance head, statements).
    let mut rewrites: Vec<(usize, Vec<String>)> = Vec::new();
    let mut solved: Vec<SolvedRewrite> = Vec::new();
    let mut solved_instances = 0usize;
    let mut solved_queries = 0usize;
    let mut skipped_overlaps = 0usize;

    for inst in instances {
        for &ri in &inst.records {
            in_any_instance[ri] = true;
        }
        if !inst.solvable {
            continue;
        }
        let Some(solver) = solvers.for_class(&inst.class) else {
            continue;
        };
        if inst.records.iter().any(|&ri| consumed[ri]) {
            skipped_overlaps += 1;
            continue;
        }
        let Some(statements) = solver.solve(inst, ctx) else {
            continue;
        };
        for &ri in &inst.records {
            consumed[ri] = true;
        }
        solved_instances += 1;
        solved_queries += inst.records.len();
        let originals: Vec<&LogEntry> = inst
            .records
            .iter()
            .map(|&ri| ctx.log.entry(ctx.records[ri].entry_idx as usize))
            .collect();
        solved.push(SolvedRewrite {
            class: inst.class.clone(),
            entry_ids: originals.iter().map(|e| e.id).collect(),
            original_statements: originals.iter().map(|e| e.statement.clone()).collect(),
            rewritten_statements: statements.clone(),
        });
        rewrites.push((inst.records[0], statements));
    }

    // Assemble the clean log: unconsumed records keep their entries;
    // rewrites are placed at the head record's position (same time & user,
    // id 0 until the final resequencing).
    //
    // The records are (timestamp, id)-sorted, so the unconsumed survivors
    // are sorted by construction and each rewrite entry's sort key is
    // (head timestamp, 0). Instead of re-sorting the spliced vector, the
    // survivors and the rewrites are merged stably — a rewrite goes before
    // a survivor exactly when its key is strictly smaller. This reproduces
    // what the stable sort of the spliced vector used to produce: the only
    // possible key tie against a survivor is the log's id-0 entry, which
    // came first in splice order and so stayed first under the stable sort.
    let mut survivors: Vec<LogEntry> = Vec::with_capacity(n_records);
    let mut removal: Vec<LogEntry> = Vec::with_capacity(n_records);
    let mut rewrite_entries: Vec<LogEntry> = Vec::new();
    let mut rewritten_statements = 0usize;
    rewrites.sort_by_key(|(head, _)| *head);
    let mut rw_iter = rewrites.into_iter().peekable();

    for (ri, rec) in ctx.records.iter().enumerate() {
        let entry = ctx.log.entry(rec.entry_idx as usize);
        while let Some((head, _)) = rw_iter.peek() {
            if *head == ri {
                let (_, statements) = rw_iter.next().expect("peeked");
                for stmt in statements {
                    rewritten_statements += 1;
                    rewrite_entries.push(LogEntry {
                        id: 0,
                        statement: stmt,
                        timestamp: entry.timestamp,
                        user: entry.user.clone(),
                        session: entry.session.clone(),
                        rows: None,
                        truth: None,
                    });
                }
            } else {
                break;
            }
        }
        if !consumed[ri] {
            survivors.push(entry.clone());
        }
        if !in_any_instance[ri] {
            removal.push(entry.clone());
        }
    }

    let mut clean: Vec<LogEntry> = Vec::with_capacity(survivors.len() + rewrite_entries.len());
    let mut rw = rewrite_entries.into_iter().peekable();
    for entry in survivors {
        while rw
            .peek()
            .is_some_and(|r| (r.timestamp, 0) < (entry.timestamp, entry.id))
        {
            clean.push(rw.next().expect("peeked"));
        }
        clean.push(entry);
    }
    clean.extend(rw);

    let mut clean_log = QueryLog::from_entries(clean);
    debug_assert!(clean_log.is_time_sorted());
    for (i, e) in clean_log.entries.iter_mut().enumerate() {
        e.id = i as u64;
    }
    // The removal log is a subsequence of the sorted records: sorted by
    // construction.
    let mut removal_log = QueryLog::from_entries(removal);
    debug_assert!(removal_log.is_time_sorted());
    for (i, e) in removal_log.entries.iter_mut().enumerate() {
        e.id = i as u64;
    }

    rec.counter("solve.solved_instances", solved_instances as u64);
    rec.counter("solve.solved_queries", solved_queries as u64);
    rec.counter("solve.rewritten_statements", rewritten_statements as u64);
    rec.counter("solve.skipped_overlaps", skipped_overlaps as u64);
    SolveOutcome {
        clean_log,
        removal_log,
        solved_instances,
        solved_queries,
        rewritten_statements,
        skipped_overlaps,
        rewrites: solved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use crate::detect::detect_builtin;
    use crate::ext::SolverSet;
    use crate::mine::build_sessions;
    use crate::parse_step::parse_log;
    use crate::store::TemplateStore;
    use sqlog_catalog::skyserver_catalog;
    use sqlog_log::{LogEntry, LogView, QueryLog, Timestamp};

    fn run(rows: &[&str]) -> SolveOutcome {
        let log = QueryLog::from_entries(
            rows.iter()
                .enumerate()
                .map(|(i, s)| {
                    LogEntry::minimal(i as u64, *s, Timestamp::from_secs(i as i64)).with_user("u")
                })
                .collect(),
        );
        let store = TemplateStore::new();
        let parsed = parse_log(&log, &store, 1);
        let sessions = build_sessions(&log, &parsed.records, 300_000);
        let catalog = skyserver_catalog();
        let config = PipelineConfig::default();
        let view = LogView::identity(&log);
        let ctx = DetectCtx {
            log: &view,
            records: &parsed.records,
            sessions: &sessions.sessions,
            store: &store,
            catalog: &catalog,
            config: &config,
        };
        let instances = detect_builtin(&ctx);
        apply_solutions(&ctx, &instances, &SolverSet::builtin())
    }

    #[test]
    fn paper_table_3_shape() {
        // Table 2 → Table 3 of the paper: the DW triple collapses to one
        // IN-query; the CTH source survives.
        let out = run(&[
            "SELECT E.Id FROM Employees E WHERE E.department = 'sales'",
            "SELECT E.name, E.surname FROM Employees E WHERE E.id = 12",
            "SELECT E.name, E.surname FROM Employees E WHERE E.id = 15",
            "SELECT E.name, E.surname FROM Employees E WHERE E.id = 16",
        ]);
        assert_eq!(out.solved_instances, 1);
        assert_eq!(out.solved_queries, 3);
        assert_eq!(out.clean_log.len(), 2);
        assert!(out.clean_log.entries[1]
            .statement
            .contains("IN (12, 15, 16)"));
        // Removal drops everything covered by any instance — including the
        // CTH candidate's source query.
        assert_eq!(out.removal_log.len(), 0);
    }

    #[test]
    fn non_antipattern_queries_pass_through() {
        let out = run(&[
            "SELECT count(*) FROM photoprimary WHERE htmid>=1 and htmid<=2",
            "SELECT count(*) FROM photoprimary WHERE htmid>=3 and htmid<=4",
        ]);
        assert_eq!(out.solved_instances, 0);
        assert_eq!(out.clean_log.len(), 2);
        assert_eq!(out.removal_log.len(), 2);
    }

    #[test]
    fn overlapping_instances_first_wins() {
        // DW run 1,2,3 then a DS pair sharing record 3.
        let out = run(&[
            "SELECT rowc_g, colc_g FROM photoprimary WHERE objid=1",
            "SELECT rowc_g, colc_g FROM photoprimary WHERE objid=2",
            "SELECT rowc_g, colc_g FROM photoprimary WHERE objid=3",
            "SELECT ra, dec FROM photoprimary WHERE objid=3",
        ]);
        // DW solved; DS skipped because record 3 was consumed. The DS pair's
        // second query (ra, dec) survives unconsumed.
        assert_eq!(out.solved_instances, 1);
        assert_eq!(out.skipped_overlaps, 1);
        assert_eq!(out.clean_log.len(), 2);
    }

    #[test]
    fn clean_log_ids_are_sequential() {
        let out = run(&[
            "SELECT name FROM Employee WHERE empId = 8",
            "SELECT name FROM Employee WHERE empId = 1",
            "SELECT count(*) FROM photoprimary WHERE htmid>=1 and htmid<=2",
        ]);
        for (i, e) in out.clean_log.entries.iter().enumerate() {
            assert_eq!(e.id, i as u64);
        }
        assert!(out.clean_log.is_time_sorted());
    }

    #[test]
    fn rewrites_expose_original_and_replacement_pairs() {
        let out = run(&[
            "SELECT E.name, E.surname FROM Employees E WHERE E.id = 12",
            "SELECT E.name, E.surname FROM Employees E WHERE E.id = 15",
        ]);
        assert_eq!(out.rewrites.len(), 1);
        let rw = &out.rewrites[0];
        assert_eq!(rw.class, AntipatternClass::DwStifle);
        assert_eq!(rw.entry_ids, vec![0, 1]);
        assert_eq!(rw.original_statements.len(), 2);
        assert!(rw.original_statements[0].ends_with("E.id = 12"));
        assert_eq!(rw.rewritten_statements.len(), 1);
        assert!(rw.rewritten_statements[0].contains("IN (12, 15)"));
    }

    #[test]
    fn snc_is_rewritten_in_place() {
        let out = run(&["SELECT * FROM photoprimary WHERE flags = NULL"]);
        assert_eq!(out.solved_instances, 1);
        assert_eq!(out.clean_log.len(), 1);
        assert!(out.clean_log.entries[0].statement.ends_with("IS NULL"));
    }
}
