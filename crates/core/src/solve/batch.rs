//! Batched statement parsing for solvers.
//!
//! Stifle instances group statements that differ only in their literals —
//! exactly what a DW chain is. The solvers used to re-parse every statement
//! from scratch ([`sqlog_sql::parse_statement`] per record); at paper scale
//! that full parse dominates the solve stage. [`QueryCache`] removes it:
//!
//! 1. each statement is scanned allocation-free into its literal spans and a
//!    **masked key** — an FNV-1a hash of the raw bytes with every literal
//!    span replaced by a kind marker. Two statements share a masked key iff
//!    they are byte-identical outside their literal spans (case, whitespace
//!    and comments included) with the same literal kinds in the same places,
//!    so they lex to the same token sequence modulo literal *values* and the
//!    parser — which never branches on literal values — builds the same tree
//!    shape with the literals in the same slots;
//! 2. the first statement of a shape is parsed in full and **certified**:
//!    its own span texts are substituted back into a clone of its AST (in
//!    [`walk_query`] order) and the result must equal the original. With
//!    pairwise-distinct span texts this proves the mutable walker visits the
//!    literal slots in statement order, so the certified template can be
//!    instantiated for *any* statement of the shape;
//! 3. every later statement of a certified shape skips the parser entirely:
//!    clone the template, write its own span texts into the literal slots.
//!
//! Certification failure (duplicate span texts, a literal the walker cannot
//! see — e.g. the number inside `CAST(x AS varchar(32))`'s type — or a
//! count mismatch) marks the shape unbatchable and those statements take the
//! full-parse path forever; the cache is a pure win or a no-op, never a
//! change in output. Substitution reproduces the parser's literal handling
//! exactly: numbers keep their verbatim token text, strings fold each `''`
//! escape to `'`.

use sqlog_obs::Recorder;
use sqlog_skeleton::{Fnv1a, FnvHashMap, RawLiteral, RawLiteralKind};
use sqlog_sql::ast::{Expr, Literal, Query, Select, SelectItem, Statement, TableRef};
use sqlog_sql::parse_statement;
use std::sync::Mutex;

/// Marker byte hashed in place of a numeric literal span.
const MASK_NUM: u8 = 0xF8;
/// Marker byte hashed in place of a string literal span.
const MASK_STR: u8 = 0xF9;

/// Cache key: FNV-1a over the statement bytes with literal spans masked,
/// plus the masked length and the span count (collision backstop, mirroring
/// [`sqlog_skeleton::RawKey`]). Unlike `RawKey` this key is case- and
/// whitespace-*sensitive*: the certified template is re-rendered with the
/// original identifier spelling, so shapes that differ anywhere outside
/// their literals must not share a template. Being finer than token
/// equivalence costs at most an extra certification per spelling variant —
/// and buys a single-pass scan ([`masked_scan`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct MaskedKey {
    hash: u64,
    len: u32,
    literals: u32,
}

/// Single-pass scanner behind [`masked_scan`]: hashes the statement bytes
/// verbatim while detecting literal token boundaries the same way
/// [`sqlog_skeleton::raw_shape_scan`] does.
struct MaskScan<'a> {
    bytes: &'a [u8],
    pos: usize,
    hash: Fnv1a,
    len: u32,
}

impl MaskScan<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    /// Hashes the current byte verbatim and advances.
    fn take(&mut self) {
        self.hash.update(&self.bytes[self.pos..self.pos + 1]);
        self.len += 1;
        self.pos += 1;
    }

    /// Hashes `[pos, end)` verbatim and advances to `end`.
    fn take_to(&mut self, end: usize) {
        self.hash.update(&self.bytes[self.pos..end]);
        self.len += (end - self.pos) as u32;
        self.pos = end;
    }

    /// Hashes a literal's marker byte (the span itself is skipped).
    fn mask(&mut self, marker: u8) {
        self.hash.update(&[marker]);
        self.len += 1;
    }

    /// `'...'` string literal; records the inner span. `false` = unterminated.
    fn scan_string(&mut self, literals: &mut Vec<RawLiteral>) -> bool {
        self.take(); // opening quote
        let content_start = self.pos;
        let mut has_escape = false;
        loop {
            match self.peek() {
                Some(b'\'') => {
                    if self.peek2() == Some(b'\'') {
                        has_escape = true;
                        self.pos += 2;
                    } else {
                        literals.push(RawLiteral {
                            start: content_start as u32,
                            end: self.pos as u32,
                            kind: RawLiteralKind::String { has_escape },
                        });
                        self.mask(MASK_STR);
                        self.take(); // closing quote
                        return true;
                    }
                }
                Some(_) => self.pos += 1,
                None => return false,
            }
        }
    }

    /// `"x"` / `[x]` quoted identifier: hashed verbatim, its content opens
    /// no literal. `false` = unterminated.
    fn scan_quoted_ident(&mut self, close: u8) -> bool {
        self.take(); // opening quote
        loop {
            match self.peek() {
                Some(b) if b == close => {
                    self.take();
                    return true;
                }
                Some(_) => self.take(),
                None => return false,
            }
        }
    }

    /// `@name` / `@@global`: hashed verbatim; digits in the name are part of
    /// the identifier, not number literals. `false` = a bare `@`.
    fn scan_variable(&mut self) -> bool {
        self.take(); // @
        if self.peek() == Some(b'@') {
            self.take();
        }
        let name_start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'_' || b.is_ascii_alphanumeric() {
                self.take();
            } else {
                break;
            }
        }
        self.pos != name_start
    }

    /// Number token (hex, decimal, trailing-dot, exponent forms — the same
    /// boundaries as the lexer); records the span, hashes the marker.
    fn scan_number(&mut self, literals: &mut Vec<RawLiteral>) {
        let start = self.pos;
        if self.peek() == Some(b'0')
            && matches!(self.peek2(), Some(b'x') | Some(b'X'))
            && self
                .bytes
                .get(self.pos + 2)
                .is_some_and(|b| b.is_ascii_hexdigit())
        {
            self.pos += 2;
            while self.peek().is_some_and(|b| b.is_ascii_hexdigit()) {
                self.pos += 1;
            }
        } else {
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.peek() == Some(b'.') && self.peek2().is_none_or(|b| b.is_ascii_digit()) {
                self.pos += 1;
                while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            if matches!(self.peek(), Some(b'e') | Some(b'E')) {
                let mut look = self.pos + 1;
                if matches!(self.bytes.get(look), Some(b'+') | Some(b'-')) {
                    look += 1;
                }
                if self.bytes.get(look).is_some_and(|b| b.is_ascii_digit()) {
                    self.pos = look;
                    while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                        self.pos += 1;
                    }
                }
            }
        }
        literals.push(RawLiteral {
            start: start as u32,
            end: self.pos as u32,
            kind: RawLiteralKind::Number,
        });
        self.mask(MASK_NUM);
    }

    /// Word token: consumed whole so its digits never open a number.
    fn scan_word(&mut self) {
        let mut end = self.pos;
        while let Some(&b) = self.bytes.get(end) {
            if b == b'_' || b == b'#' || b == b'$' || b.is_ascii_alphanumeric() || b >= 0x80 {
                end += 1;
            } else {
                break;
            }
        }
        self.take_to(end);
    }
}

/// Scans `sql` in one pass into its [`MaskedKey`], recording literal spans
/// into `literals` (cleared first, filled in statement order).
///
/// Unlike [`sqlog_skeleton::raw_shape_scan`] the stream is *not* normalized
/// — every non-literal byte (whitespace, comments, identifier case) is
/// hashed verbatim. The literal token boundaries are detected exactly the
/// same way, which is the only part the cache's soundness needs; hashing
/// finer than token equivalence merely splits spelling variants into their
/// own shapes. Returns `None` when literal spans cannot be determined
/// soundly (unterminated strings / block comments / quoted identifiers,
/// a bare `@`) — those statements take the full-parse path.
fn masked_scan(sql: &str, literals: &mut Vec<RawLiteral>) -> Option<MaskedKey> {
    literals.clear();
    let mut s = MaskScan {
        bytes: sql.as_bytes(),
        pos: 0,
        hash: Fnv1a::new(),
        len: 0,
    };
    while let Some(b) = s.peek() {
        match b {
            b'-' if s.peek2() == Some(b'-') => {
                // Line comment: hashed verbatim; its bytes open no literal.
                let nl = s.bytes[s.pos..]
                    .iter()
                    .position(|&c| c == b'\n')
                    .map_or(s.bytes.len(), |i| s.pos + i + 1);
                s.take_to(nl);
            }
            b'/' if s.peek2() == Some(b'*') => {
                // Nested block comment, hashed verbatim.
                let mut depth = 0usize;
                loop {
                    match s.peek() {
                        Some(b'/') if s.peek2() == Some(b'*') => {
                            s.take_to(s.pos + 2);
                            depth += 1;
                        }
                        Some(b'*') if s.peek2() == Some(b'/') => {
                            s.take_to(s.pos + 2);
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        Some(_) => s.take(),
                        None => return None,
                    }
                }
            }
            b'\'' => {
                if !s.scan_string(literals) {
                    return None;
                }
            }
            b'"' => {
                if !s.scan_quoted_ident(b'"') {
                    return None;
                }
            }
            b'[' => {
                if !s.scan_quoted_ident(b']') {
                    return None;
                }
            }
            b'@' => {
                if !s.scan_variable() {
                    return None;
                }
            }
            b'0'..=b'9' => s.scan_number(literals),
            b'.' if s.peek2().is_some_and(|c| c.is_ascii_digit()) => s.scan_number(literals),
            b'_' | b'a'..=b'z' | b'A'..=b'Z' | b'#' => s.scan_word(),
            _ if b >= 0x80 => s.scan_word(),
            _ => s.take(),
        }
    }
    Some(MaskedKey {
        hash: s.hash.finish().0,
        len: s.len,
        literals: literals.len() as u32,
    })
}

/// What the cache knows about one statement shape.
enum Slot {
    /// Certified template: clone + literal substitution reproduces a full
    /// parse of any statement with this masked key.
    Certified(Box<Query>),
    /// Certification failed; statements of this shape always full-parse.
    Unbatchable,
}

/// A concurrent masked-key → certified-template cache.
///
/// [`QueryCache::query`] is a drop-in replacement for "parse the statement,
/// keep it if it is a SELECT": same result for every input, amortized
/// parse-free for repeated shapes.
#[derive(Default)]
pub struct QueryCache {
    map: Mutex<FnvHashMap<MaskedKey, Slot>>,
}

impl QueryCache {
    /// Parses `sql` through the template cache. Returns `None` exactly when
    /// a direct [`parse_select`] would: parse error or non-SELECT.
    ///
    /// Each newly certified shape bumps the `solve.batched_templates`
    /// counter on `rec`.
    pub fn query(&self, sql: &str, rec: &Recorder) -> Option<Query> {
        let mut spans = Vec::new();
        let Some(key) = masked_scan(sql, &mut spans) else {
            return parse_select(sql);
        };
        {
            let map = self.map.lock().expect("query cache poisoned");
            match map.get(&key) {
                Some(Slot::Certified(template)) => {
                    let mut q = (**template).clone();
                    if substitute(&mut q, sql, &spans) {
                        return Some(q);
                    }
                    // Defensive: substitution cannot fail for a certified
                    // shape, but the full parse is always a correct answer.
                    drop(map);
                    return parse_select(sql);
                }
                Some(Slot::Unbatchable) => {
                    drop(map);
                    return parse_select(sql);
                }
                None => {}
            }
        }
        // First sighting of this shape: full-parse, then try to certify the
        // statement as the shape's template. The lock is not held across the
        // parse; a racing thread at worst also parses and the `or_insert`
        // keeps one winner.
        let q = parse_select(sql);
        let slot = match &q {
            Some(parsed) if certify(parsed, sql, &spans) => {
                rec.counter("solve.batched_templates", 1);
                Slot::Certified(Box::new(parsed.clone()))
            }
            _ => Slot::Unbatchable,
        };
        self.map
            .lock()
            .expect("query cache poisoned")
            .entry(key)
            .or_insert(slot);
        q
    }
}

/// Direct parse: the statement's query if it is a SELECT.
pub fn parse_select(sql: &str) -> Option<Query> {
    match parse_statement(sql).ok()? {
        Statement::Select(q) => Some(*q),
        Statement::Other(_) => None,
    }
}

/// True when `parsed` (the full parse of `sql`, whose literal spans are
/// `spans`) can serve as the shape's template: the span texts are pairwise
/// distinct per kind, and substituting them back into a clone reproduces
/// `parsed` exactly — which proves the walker visits the literal slots in
/// statement order and that no literal is outside the walker's reach.
fn certify(parsed: &Query, sql: &str, spans: &[RawLiteral]) -> bool {
    for (i, a) in spans.iter().enumerate() {
        for b in &spans[..i] {
            let same_kind = matches!(a.kind, RawLiteralKind::Number)
                == matches!(b.kind, RawLiteralKind::Number);
            if same_kind && a.text(sql) == b.text(sql) {
                return false;
            }
        }
    }
    let mut round_trip = parsed.clone();
    substitute(&mut round_trip, sql, spans) && round_trip == *parsed
}

/// Writes the literal spans of `sql` into the number/string literal slots of
/// `q`, in walker order. True iff every slot got a span and every span a
/// slot.
fn substitute(q: &mut Query, sql: &str, spans: &[RawLiteral]) -> bool {
    let mut idx = 0usize;
    let mut ok = true;
    walk_query(q, &mut |lit| {
        if !matches!(lit, Literal::Number(_) | Literal::String(_)) {
            return; // NULL / TRUE / FALSE are word tokens, not spans.
        }
        match spans.get(idx).and_then(|s| s.text(sql).map(|t| (s, t))) {
            Some((span, text)) => {
                *lit = match span.kind {
                    RawLiteralKind::Number => Literal::Number(text.to_string()),
                    RawLiteralKind::String { has_escape } => Literal::String(if has_escape {
                        text.replace("''", "'")
                    } else {
                        text.to_string()
                    }),
                };
                idx += 1;
            }
            None => ok = false,
        }
    });
    ok && idx == spans.len()
}

/// Visits every number/string literal slot of a query, mutably, in source
/// order (certification double-checks the order, so a clause this walk
/// misses degrades the shape to unbatchable rather than corrupting it).
fn walk_query(q: &mut Query, f: &mut impl FnMut(&mut Literal)) {
    walk_select(&mut q.body, f);
    for (_, _, sel) in &mut q.set_ops {
        walk_select(sel, f);
    }
    for item in &mut q.order_by {
        walk_expr(&mut item.expr, f);
    }
    if let Some(e) = &mut q.limit {
        walk_expr(e, f);
    }
}

fn walk_select(s: &mut Select, f: &mut impl FnMut(&mut Literal)) {
    if let Some(e) = &mut s.top {
        walk_expr(e, f);
    }
    for item in &mut s.projection {
        if let SelectItem::Expr { expr, .. } = item {
            walk_expr(expr, f);
        }
    }
    for t in &mut s.from {
        walk_table(t, f);
    }
    if let Some(e) = &mut s.selection {
        walk_expr(e, f);
    }
    for e in &mut s.group_by {
        walk_expr(e, f);
    }
    if let Some(e) = &mut s.having {
        walk_expr(e, f);
    }
}

fn walk_table(t: &mut TableRef, f: &mut impl FnMut(&mut Literal)) {
    match t {
        TableRef::Table { .. } => {}
        TableRef::Function { args, .. } => {
            for a in args {
                walk_expr(a, f);
            }
        }
        TableRef::Derived { subquery, .. } => walk_query(subquery, f),
        TableRef::Join {
            left,
            right,
            constraint,
            ..
        } => {
            walk_table(left, f);
            walk_table(right, f);
            if let Some(c) = constraint {
                walk_expr(c, f);
            }
        }
    }
}

fn walk_expr(e: &mut Expr, f: &mut impl FnMut(&mut Literal)) {
    match e {
        Expr::Literal(lit) => f(lit),
        Expr::Binary { left, right, .. } => {
            walk_expr(left, f);
            walk_expr(right, f);
        }
        Expr::Unary { expr, .. } => walk_expr(expr, f),
        Expr::Function { args, .. } => {
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::IsNull { expr, .. } => walk_expr(expr, f),
        Expr::InList { expr, list, .. } => {
            walk_expr(expr, f);
            for x in list {
                walk_expr(x, f);
            }
        }
        Expr::InSubquery { expr, subquery, .. } => {
            walk_expr(expr, f);
            walk_query(subquery, f);
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            walk_expr(expr, f);
            walk_expr(low, f);
            walk_expr(high, f);
        }
        Expr::Like { expr, pattern, .. } => {
            walk_expr(expr, f);
            walk_expr(pattern, f);
        }
        Expr::Nested(inner) => walk_expr(inner, f),
        Expr::Subquery(q) => walk_query(q, f),
        Expr::Exists { subquery, .. } => walk_query(subquery, f),
        Expr::Case {
            operand,
            branches,
            else_result,
        } => {
            if let Some(op) = operand {
                walk_expr(op, f);
            }
            for (when, then) in branches {
                walk_expr(when, f);
                walk_expr(then, f);
            }
            if let Some(e) = else_result {
                walk_expr(e, f);
            }
        }
        Expr::Cast { expr, .. } => walk_expr(expr, f),
        Expr::Column(_) | Expr::Variable(_) | Expr::Wildcard => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The strong equivalence check: rendered text, not `PartialEq` — Ident
    /// equality is case-insensitive, so only rendering catches a template
    /// that leaked another statement's identifier spelling.
    fn assert_batched_matches_direct(cache: &QueryCache, sql: &str) {
        let rec = Recorder::disabled();
        let batched = cache.query(sql, &rec);
        let direct = parse_select(sql);
        match (&batched, &direct) {
            (Some(b), Some(d)) => {
                assert_eq!(b.to_string(), d.to_string(), "render mismatch for {sql}");
                assert_eq!(b, d, "AST mismatch for {sql}");
            }
            (None, None) => {}
            _ => panic!("batched={batched:?} direct={direct:?} for {sql}"),
        }
    }

    #[test]
    fn repeated_shapes_reproduce_the_direct_parse() {
        let cache = QueryCache::default();
        for sql in [
            "SELECT name FROM Employee WHERE empId = 8",
            "SELECT name FROM Employee WHERE empId = 12345",
            "SELECT name FROM Employee WHERE empId = 0x1AF",
            "SELECT name FROM Employee WHERE empId = 1.5e-3",
            "SELECT description FROM DBObjects WHERE name = 'Galaxy'",
            "SELECT description FROM DBObjects WHERE name = 'it''s'",
            "SELECT description FROM DBObjects WHERE name = 'a''''b'",
            "SELECT TOP 10 ra, dec FROM photoprimary WHERE objid = 42 ORDER BY ra",
            "SELECT TOP 99 ra, dec FROM photoprimary WHERE objid = 43 ORDER BY ra",
            "SELECT a FROM t WHERE x BETWEEN 1 AND 2 AND s LIKE 'p%'",
            "SELECT a FROM t WHERE x BETWEEN 30 AND 44 AND s LIKE 'q%'",
            "SELECT a FROM (SELECT b FROM u WHERE c = 7) d WHERE e IN (1, 2, 3)",
            "SELECT a FROM (SELECT b FROM u WHERE c = 9) d WHERE e IN (4, 5, 6)",
            "SELECT count(*) FROM t GROUP BY g HAVING count(*) > 5",
            "SELECT str(p.ra, 10, 4) FROM photoprimary p WHERE p.objid = 1",
            "SELECT x FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.id = t.id)",
            "SELECT CASE WHEN x = 1 THEN 'one' ELSE 'other' END FROM t",
            "SELECT x FROM a INNER JOIN b ON a.id = b.id WHERE a.v = 3",
            "SELECT x FROM t WHERE y IN (SELECT z FROM u WHERE w = 11)",
            "SELECT a FROM t WHERE x = 1 UNION SELECT a FROM t WHERE x = 2",
        ] {
            assert_batched_matches_direct(&cache, sql);
        }
    }

    #[test]
    fn identifier_spelling_is_not_shared_across_statements() {
        // Same tokens modulo case → same RawKey, but masked keys differ, so
        // each spelling renders with its own identifiers.
        let cache = QueryCache::default();
        assert_batched_matches_direct(&cache, "SELECT Name FROM Employee WHERE EmpId = 8");
        assert_batched_matches_direct(&cache, "select name from employee where empid = 9");
    }

    #[test]
    fn duplicate_literal_representatives_degrade_soundly() {
        // "1, 1" cannot be certified (ambiguous slot order); the shape must
        // still answer correctly for "2, 3".
        let cache = QueryCache::default();
        assert_batched_matches_direct(&cache, "SELECT a FROM t WHERE x = 1 AND y = 1");
        assert_batched_matches_direct(&cache, "SELECT a FROM t WHERE x = 2 AND y = 3");
    }

    #[test]
    fn literals_outside_the_walker_degrade_soundly() {
        // The CAST type's "32" is a scanned span but lives in `ty: String`,
        // not a literal slot — certification must reject the shape.
        let cache = QueryCache::default();
        assert_batched_matches_direct(&cache, "SELECT CAST(x AS varchar(32)) FROM t WHERE y = 1");
        assert_batched_matches_direct(&cache, "SELECT CAST(x AS varchar(32)) FROM t WHERE y = 2");
    }

    #[test]
    fn unkeyable_and_non_select_statements_pass_through() {
        let cache = QueryCache::default();
        let rec = Recorder::disabled();
        assert!(cache.query("SELECT 'oops", &rec).is_none());
        assert!(cache.query("DELETE FROM t WHERE x = 1", &rec).is_none());
        assert!(cache.query("DELETE FROM t WHERE x = 2", &rec).is_none());
    }

    #[test]
    fn certified_templates_are_counted_once_per_shape() {
        let cache = QueryCache::default();
        let rec = Recorder::new();
        for v in 0..5 {
            cache
                .query(&format!("SELECT a FROM t WHERE x = {v}"), &rec)
                .unwrap();
        }
        cache
            .query("SELECT b FROM other WHERE y = 'z'", &rec)
            .unwrap();
        assert_eq!(rec.counters().get("solve.batched_templates"), Some(&2));
    }

    #[test]
    fn number_and_string_kinds_never_cross_shapes() {
        let cache = QueryCache::default();
        assert_batched_matches_direct(&cache, "SELECT a FROM t WHERE x = 1");
        assert_batched_matches_direct(&cache, "SELECT a FROM t WHERE x = '1'");
    }
}
