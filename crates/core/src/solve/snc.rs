//! Solving SNC (Definition 16): `= NULL` → `IS NULL`,
//! `<> NULL` / `!= NULL` → `IS NOT NULL`.

use crate::detect::{AntipatternClass, AntipatternInstance, DetectCtx};
use crate::ext::Solver;
use sqlog_sql::ast::*;
use sqlog_sql::parse_statement;

/// Solver for SNC occurrences.
pub struct SncSolver;

/// Recursively rewrites NULL comparisons inside an expression.
fn rewrite(e: Expr) -> Expr {
    match e {
        Expr::Binary { left, op, right } => {
            let null_side = |x: &Expr| matches!(x, Expr::Literal(Literal::Null));
            match op {
                BinaryOp::Eq | BinaryOp::NotEq if null_side(&right) => Expr::IsNull {
                    expr: Box::new(rewrite(*left)),
                    negated: op == BinaryOp::NotEq,
                },
                BinaryOp::Eq | BinaryOp::NotEq if null_side(&left) => Expr::IsNull {
                    expr: Box::new(rewrite(*right)),
                    negated: op == BinaryOp::NotEq,
                },
                _ => Expr::Binary {
                    left: Box::new(rewrite(*left)),
                    op,
                    right: Box::new(rewrite(*right)),
                },
            }
        }
        Expr::Unary { op, expr } => Expr::Unary {
            op,
            expr: Box::new(rewrite(*expr)),
        },
        Expr::Nested(inner) => Expr::Nested(Box::new(rewrite(*inner))),
        other => other,
    }
}

impl Solver for SncSolver {
    fn name(&self) -> &str {
        "snc"
    }

    fn solve(&self, inst: &AntipatternInstance, ctx: &DetectCtx<'_>) -> Option<Vec<String>> {
        if inst.class != AntipatternClass::Snc {
            return None;
        }
        let entry = ctx.record_entry(*inst.records.first()?);
        let Statement::Select(mut q) = parse_statement(&entry.statement).ok()? else {
            return None;
        };
        q.body.selection = q.body.selection.take().map(rewrite);
        q.body.having = q.body.having.take().map(rewrite);
        Some(vec![q.to_string()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use crate::detect::snc::SncDetector;
    use crate::detect::{DetectCtx, Detector};
    use crate::mine::build_sessions;
    use crate::parse_step::parse_log;
    use crate::store::TemplateStore;
    use sqlog_catalog::skyserver_catalog;
    use sqlog_log::{LogEntry, LogView, QueryLog, Timestamp};

    fn solve(sql: &str) -> String {
        let log = QueryLog::from_entries(vec![
            LogEntry::minimal(0, sql, Timestamp::from_secs(0)).with_user("u")
        ]);
        let store = TemplateStore::new();
        let parsed = parse_log(&log, &store, 1);
        let sessions = build_sessions(&log, &parsed.records, 300_000);
        let catalog = skyserver_catalog();
        let config = PipelineConfig::default();
        let view = LogView::identity(&log);
        let ctx = DetectCtx {
            log: &view,
            records: &parsed.records,
            sessions: &sessions.sessions,
            store: &store,
            catalog: &catalog,
            config: &config,
        };
        let instances = SncDetector.detect(&ctx);
        assert_eq!(instances.len(), 1, "expected one SNC in {sql:?}");
        SncSolver.solve(&instances[0], &ctx).unwrap().remove(0)
    }

    #[test]
    fn paper_rewrites() {
        assert_eq!(
            solve("SELECT * FROM Bugs WHERE assigned_to = NULL"),
            "SELECT * FROM Bugs WHERE assigned_to IS NULL"
        );
        assert_eq!(
            solve("SELECT * FROM Bugs WHERE assigned_to <> NULL"),
            "SELECT * FROM Bugs WHERE assigned_to IS NOT NULL"
        );
    }

    #[test]
    fn rewrites_inside_conjunctions_and_reversed() {
        assert_eq!(
            solve("SELECT a FROM t WHERE x = 1 AND y = NULL"),
            "SELECT a FROM t WHERE x = 1 AND y IS NULL"
        );
        assert_eq!(
            solve("SELECT a FROM t WHERE NULL = y"),
            "SELECT a FROM t WHERE y IS NULL"
        );
    }
}
