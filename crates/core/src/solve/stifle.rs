//! Solving the three Stifle classes (Examples 10, 12 and 14 of the paper).
//!
//! * **DW**: one query with all constants merged into an `IN` list,
//! * **DS**: one query with the union of the SELECT lists,
//! * **DF**: one query joining the tables on the shared key column.
//!
//! Solvers re-parse the statements they rewrite (the parse step does not
//! retain ASTs); the rewritten statement is rendered by the canonical
//! printer, so it re-parses to exactly the intended tree.

use crate::detect::{AntipatternClass, AntipatternInstance, DetectCtx};
use crate::ext::Solver;
use crate::solve::batch::{parse_select, QueryCache};
use sqlog_skeleton::FnvHashSet;
use sqlog_sql::ast::*;

/// Solver for DW/DS/DF Stifle instances.
///
/// Carries a [`QueryCache`] so instances over the same statement shape —
/// the defining property of a Stifle chain — parse the shape once and
/// instantiate per-record literals from the certified template.
#[derive(Default)]
pub struct StifleSolver {
    cache: QueryCache,
}

impl StifleSolver {
    /// Parses the statement behind record `ri` and returns its query,
    /// through the batch cache when [`crate::PipelineConfig::solve_batching`]
    /// is on.
    fn query_of(&self, ctx: &DetectCtx<'_>, ri: usize) -> Option<Query> {
        let entry = ctx.record_entry(ri);
        if ctx.config.solve_batching {
            self.cache.query(&entry.statement, &ctx.config.recorder)
        } else {
            parse_select(&entry.statement)
        }
    }
}

/// The column expression and literal of a single-equality WHERE clause.
fn equality_parts(selection: &Expr) -> Option<(Expr, Expr)> {
    match selection {
        Expr::Nested(inner) => equality_parts(inner),
        Expr::Binary {
            left,
            op: BinaryOp::Eq,
            right,
        } => {
            if matches!(strip(left), Expr::Column(_)) {
                Some((strip(left).clone(), strip(right).clone()))
            } else if matches!(strip(right), Expr::Column(_)) {
                Some((strip(right).clone(), strip(left).clone()))
            } else {
                None
            }
        }
        _ => None,
    }
}

fn strip(e: &Expr) -> &Expr {
    match e {
        Expr::Nested(inner) => strip(inner),
        other => other,
    }
}

/// Rendered form of a projection item, for duplicate elimination.
fn item_text(item: &SelectItem) -> String {
    item.to_string().to_ascii_lowercase()
}

impl StifleSolver {
    /// Example 10: `WHERE col = v₁ … WHERE col = vₙ` →
    /// `WHERE col IN (v₁, …, vₙ)`.
    fn solve_dw(&self, inst: &AntipatternInstance, ctx: &DetectCtx<'_>) -> Option<Vec<String>> {
        let mut base = self.query_of(ctx, inst.records[0])?;
        let (col_expr, _) = equality_parts(base.body.selection.as_ref()?)?;

        let mut values: Vec<Expr> = Vec::with_capacity(inst.records.len());
        // Rendered-text prefilter for the duplicate-value scan: AST-equal
        // values render to equal lower-cased text (Ident comparison is
        // case-insensitive), so a fresh rendering proves a fresh value and
        // only rendering collisions pay the exact O(k) AST scan.
        let mut rendered: FnvHashSet<String> = FnvHashSet::default();
        for &ri in &inst.records {
            let q = self.query_of(ctx, ri)?;
            let (_, value) = equality_parts(q.body.selection.as_ref()?)?;
            if rendered.insert(value.to_string().to_ascii_lowercase()) || !values.contains(&value) {
                values.push(value);
            }
        }

        if ctx.config.rewrite_adds_filter_column {
            // Prepend the filter column so each result row remains
            // attributable to one of the merged constants (Example 10 adds
            // `empId` to the projection).
            let Expr::Column(name) = &col_expr else {
                return None;
            };
            let already = base.body.projection.iter().any(|item| match item {
                SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => true,
                SelectItem::Expr {
                    expr: Expr::Column(c),
                    ..
                } => c.last() == name.last(),
                _ => false,
            });
            if !already {
                base.body.projection.insert(
                    0,
                    SelectItem::Expr {
                        expr: col_expr.clone(),
                        alias: None,
                    },
                );
            }
        }

        base.body.selection = Some(Expr::InList {
            expr: Box::new(col_expr),
            list: values,
            negated: false,
        });
        Some(vec![base.to_string()])
    }

    /// Example 12: union the SELECT lists over the shared FROM + WHERE.
    fn solve_ds(&self, inst: &AntipatternInstance, ctx: &DetectCtx<'_>) -> Option<Vec<String>> {
        let mut base = self.query_of(ctx, inst.records[0])?;
        let mut seen: FnvHashSet<String> = base.body.projection.iter().map(item_text).collect();
        let mut seen_templates: FnvHashSet<_> =
            std::iter::once(ctx.records[inst.records[0]].template).collect();
        for &ri in &inst.records[1..] {
            if !seen_templates.insert(ctx.records[ri].template) {
                continue;
            }
            let q = self.query_of(ctx, ri)?;
            for item in q.body.projection {
                if seen.insert(item_text(&item)) {
                    base.body.projection.push(item);
                }
            }
        }
        Some(vec![base.to_string()])
    }

    /// Example 14: join the tables on the filter column, qualify the
    /// projections, filter once.
    fn solve_df(&self, inst: &AntipatternInstance, ctx: &DetectCtx<'_>) -> Option<Vec<String>> {
        // Collect one representative query per distinct table.
        let mut tables: Vec<(String, Query)> = Vec::new();
        for &ri in &inst.records {
            let table = ctx.records[ri].primary_table.clone()?;
            if tables.iter().any(|(t, _)| *t == table) {
                continue;
            }
            tables.push((table, self.query_of(ctx, ri)?));
        }
        if tables.len() < 2 {
            return None;
        }
        let (col, _) = ctx.records[inst.records[0]].profile.single_equality()?;
        let col = col.to_string();
        let (_, first_q) = &tables[0];
        let (_, value) = equality_parts(first_q.body.selection.as_ref()?)?;

        // FROM: t1 INNER JOIN t2 ON t2.col = t1.col INNER JOIN …
        let mut from = TableRef::Table {
            name: ObjectName::simple(tables[0].0.clone()),
            alias: None,
        };
        for (table, _) in &tables[1..] {
            let on = Expr::Binary {
                left: Box::new(Expr::Column(ObjectName(vec![
                    Ident::new(table.clone()),
                    Ident::new(col.clone()),
                ]))),
                op: BinaryOp::Eq,
                right: Box::new(Expr::Column(ObjectName(vec![
                    Ident::new(tables[0].0.clone()),
                    Ident::new(col.clone()),
                ]))),
            };
            from = TableRef::Join {
                left: Box::new(from),
                right: Box::new(TableRef::Table {
                    name: ObjectName::simple(table.clone()),
                    alias: None,
                }),
                kind: JoinKind::Inner,
                constraint: Some(on),
            };
        }

        // Projection: each source query's items, columns qualified by their
        // table so the merged query is unambiguous.
        let mut projection: Vec<SelectItem> = Vec::new();
        let mut seen: FnvHashSet<String> = FnvHashSet::default();
        for (table, q) in &tables {
            for item in &q.body.projection {
                let qualified = match item {
                    SelectItem::Expr {
                        expr: Expr::Column(name),
                        alias,
                    } => SelectItem::Expr {
                        expr: Expr::Column(ObjectName(vec![
                            Ident::new(table.clone()),
                            name.last().clone(),
                        ])),
                        alias: alias.clone(),
                    },
                    SelectItem::Wildcard => {
                        SelectItem::QualifiedWildcard(ObjectName::simple(table.clone()))
                    }
                    other => other.clone(),
                };
                if seen.insert(item_text(&qualified)) {
                    projection.push(qualified);
                }
            }
        }

        let selection = Expr::Binary {
            left: Box::new(Expr::Column(ObjectName(vec![
                Ident::new(tables[0].0.clone()),
                Ident::new(col),
            ]))),
            op: BinaryOp::Eq,
            right: Box::new(value),
        };

        let merged = Query::simple(Select {
            distinct: false,
            top: None,
            top_percent: false,
            projection,
            into: None,
            from: vec![from],
            selection: Some(selection),
            group_by: Vec::new(),
            having: None,
        });
        Some(vec![merged.to_string()])
    }
}

impl Solver for StifleSolver {
    fn name(&self) -> &str {
        "stifle"
    }

    fn solve(&self, inst: &AntipatternInstance, ctx: &DetectCtx<'_>) -> Option<Vec<String>> {
        match inst.class {
            AntipatternClass::DwStifle => self.solve_dw(inst, ctx),
            AntipatternClass::DsStifle => self.solve_ds(inst, ctx),
            AntipatternClass::DfStifle => self.solve_df(inst, ctx),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use crate::detect::{detect_builtin, DetectCtx};
    use crate::mine::build_sessions;
    use crate::parse_step::parse_log;
    use crate::store::TemplateStore;
    use sqlog_catalog::skyserver_catalog;
    use sqlog_log::{LogEntry, LogView, QueryLog, Timestamp};

    fn solve(rows: &[&str]) -> Vec<Vec<String>> {
        let log = QueryLog::from_entries(
            rows.iter()
                .enumerate()
                .map(|(i, s)| {
                    LogEntry::minimal(i as u64, *s, Timestamp::from_secs(i as i64)).with_user("u")
                })
                .collect(),
        );
        let store = TemplateStore::new();
        let parsed = parse_log(&log, &store, 1);
        let sessions = build_sessions(&log, &parsed.records, 300_000);
        let catalog = skyserver_catalog();
        let config = PipelineConfig::default();
        let view = LogView::identity(&log);
        let ctx = DetectCtx {
            log: &view,
            records: &parsed.records,
            sessions: &sessions.sessions,
            store: &store,
            catalog: &catalog,
            config: &config,
        };
        let solver = StifleSolver::default();
        detect_builtin(&ctx)
            .iter()
            .filter(|i| i.solvable)
            .filter_map(|i| solver.solve(i, &ctx))
            .collect()
    }

    /// Same harness with `solve_batching` off: the unbatched reference path.
    fn solve_unbatched(rows: &[&str]) -> Vec<Vec<String>> {
        let log = QueryLog::from_entries(
            rows.iter()
                .enumerate()
                .map(|(i, s)| {
                    LogEntry::minimal(i as u64, *s, Timestamp::from_secs(i as i64)).with_user("u")
                })
                .collect(),
        );
        let store = TemplateStore::new();
        let parsed = parse_log(&log, &store, 1);
        let sessions = build_sessions(&log, &parsed.records, 300_000);
        let catalog = skyserver_catalog();
        let config = PipelineConfig {
            solve_batching: false,
            ..PipelineConfig::default()
        };
        let view = LogView::identity(&log);
        let ctx = DetectCtx {
            log: &view,
            records: &parsed.records,
            sessions: &sessions.sessions,
            store: &store,
            catalog: &catalog,
            config: &config,
        };
        let solver = StifleSolver::default();
        detect_builtin(&ctx)
            .iter()
            .filter(|i| i.solvable)
            .filter_map(|i| solver.solve(i, &ctx))
            .collect()
    }

    #[test]
    fn dw_merges_into_in_list() {
        // Example 9 → Example 10 of the paper.
        let solved = solve(&[
            "SELECT name FROM Employee WHERE empId = 8",
            "SELECT name FROM Employee WHERE empId = 1",
        ]);
        assert_eq!(solved.len(), 1);
        assert_eq!(
            solved[0],
            vec!["SELECT empId, name FROM Employee WHERE empId IN (8, 1)".to_string()]
        );
    }

    #[test]
    fn dw_deduplicates_values() {
        let solved = solve(&[
            "SELECT name FROM Employee WHERE empId = 8",
            "SELECT name FROM Employee WHERE empId = 1",
            "SELECT name FROM Employee WHERE empId = 8",
        ]);
        // 8,1,8 → run is 8,1,8 (adjacent values differ pairwise) → IN (8, 1).
        assert!(solved[0][0].ends_with("IN (8, 1)"), "{:?}", solved);
    }

    #[test]
    fn ds_unions_select_lists() {
        // Example 11 → Example 12.
        let solved = solve(&[
            "SELECT name FROM Employee WHERE empId=8",
            "SELECT address, phone FROM Employee WHERE empId=8",
        ]);
        assert_eq!(
            solved[0],
            vec!["SELECT name, address, phone FROM Employee WHERE empId = 8".to_string()]
        );
    }

    #[test]
    fn ds_union_drops_repeated_columns() {
        let solved = solve(&[
            "SELECT name, phone FROM Employee WHERE empId=8",
            "SELECT phone, address FROM Employee WHERE empId=8",
        ]);
        assert_eq!(
            solved[0][0],
            "SELECT name, phone, address FROM Employee WHERE empId = 8"
        );
    }

    #[test]
    fn df_joins_on_the_filter_column() {
        // Example 13 → Example 14.
        let solved = solve(&[
            "SELECT name FROM Employee WHERE empId = 8",
            "SELECT address FROM EmployeeInfo WHERE empId = 8",
        ]);
        assert_eq!(
            solved[0],
            vec![
                // Table and column names come from the (lower-cased)
                // analysis facts, not the original spelling.
                "SELECT employee.name, employeeinfo.address FROM employee INNER JOIN \
                 employeeinfo ON employeeinfo.empid = employee.empid \
                 WHERE employee.empid = 8"
                    .to_string()
            ]
        );
    }

    #[test]
    fn rewrites_reparse() {
        for batch in solve(&[
            "SELECT rowc_g, colc_g FROM photoprimary WHERE objid=587722982829850000",
            "SELECT rowc_g, colc_g FROM photoprimary WHERE objid=587722982829850001",
            "SELECT rowc_g, colc_g FROM photoprimary WHERE objid=587722982829850002",
        ]) {
            for stmt in batch {
                sqlog_sql::parse_statement(&stmt)
                    .unwrap_or_else(|e| panic!("rewrite does not re-parse: {stmt}: {e}"));
            }
        }
    }

    #[test]
    fn batched_and_unbatched_rewrites_are_identical() {
        // Mixed DW / DS / DF material, shapes repeating across instances —
        // the batch cache must be invisible in the output.
        let rows = &[
            "SELECT name FROM Employee WHERE empId = 8",
            "SELECT name FROM Employee WHERE empId = 1",
            "SELECT name FROM Employee WHERE empId = 8",
            "SELECT description FROM DBObjects WHERE name='Galaxy'",
            "SELECT description FROM DBObjects WHERE name='it''s'",
            "SELECT rowc_g, colc_g FROM photoprimary WHERE objid=587722982829850000",
            "SELECT rowc_g, colc_g FROM photoprimary WHERE objid=587722982829850001",
            "SELECT ra, dec FROM photoprimary WHERE objid=587722982829850001",
        ];
        assert_eq!(solve(rows), solve_unbatched(rows));
    }

    #[test]
    fn dw_with_string_keys() {
        let solved = solve(&[
            "SELECT description FROM DBObjects WHERE name='Galaxy'",
            "SELECT description FROM DBObjects WHERE name='Star'",
        ]);
        assert_eq!(
            solved[0][0],
            "SELECT name, description FROM DBObjects WHERE name IN ('Galaxy', 'Star')"
        );
    }
}
