//! Fault injection for the resilience harness.
//!
//! The panic-isolation machinery ([`crate::shard::run_shards_isolated`])
//! only matters when something actually panics, and real poison records are
//! rare by construction. This module gives the integration tests a
//! deterministic way to plant one: when the environment variable
//! `SQLOG_FAULT_MARKER` is set, any record whose statement text contains
//! that marker panics inside the stage named by `SQLOG_FAULT_STAGE`
//! (`dedup`, `parse`, `sessions`, `mine` or `detect`; default `parse`).
//!
//! The hook is compiled in unconditionally — integration tests link the
//! non-test build — but costs one `env::var` lookup per *shard* and nothing
//! per record while disarmed. The environment is re-read on every arm call
//! (never cached) so a single test process can exercise several stages in
//! sequence.
//!
//! Because the hook ships in production binaries, arming it is never
//! silent: the first time a run finds the marker armed it prints a loud
//! warning to stderr, so a marker variable leaking into a deployment
//! environment cannot quietly drop matching records as poison with only a
//! run-health counter as evidence.
//!
//! For the `mine` stage, which sees template ids rather than statement
//! text, the marker is matched against each record's `primary_table`
//! instead — plant it in a table name.

/// Returns the armed marker when fault injection targets `stage`.
///
/// Call once per shard, outside the per-record loop.
pub(crate) fn armed(stage: &str) -> Option<String> {
    let marker = std::env::var("SQLOG_FAULT_MARKER").ok()?;
    if marker.is_empty() {
        return None;
    }
    let target = std::env::var("SQLOG_FAULT_STAGE").unwrap_or_else(|_| "parse".to_string());
    if target != stage {
        return None;
    }
    // Once per process, not per shard: the point is an unmissable trace in
    // a production run's stderr, not a log flood.
    static WARNED: std::sync::Once = std::sync::Once::new();
    WARNED.call_once(|| {
        eprintln!(
            "WARNING: fault injection is ARMED (SQLOG_FAULT_MARKER={marker:?}, stage {target:?}): \
             matching records will panic and be quarantined as poison. \
             Unset SQLOG_FAULT_MARKER unless this is a resilience test."
        );
    });
    Some(marker)
}

/// Describes the armed fault injection regardless of target stage, or
/// `None` while disarmed. The pipeline routes this through the obs event
/// sink (when one is configured) so the arming warning reaches machine
/// consumers of `--trace-events`, not just stderr.
pub(crate) fn armed_description() -> Option<String> {
    let marker = std::env::var("SQLOG_FAULT_MARKER").ok()?;
    if marker.is_empty() {
        return None;
    }
    let stage = std::env::var("SQLOG_FAULT_STAGE").unwrap_or_else(|_| "parse".to_string());
    Some(format!(
        "fault injection is ARMED: marker {marker:?}, stage {stage:?} — \
         matching records will panic and be quarantined as poison"
    ))
}

/// Panics when `text` contains the armed marker. No-op while disarmed.
pub(crate) fn trip(marker: &Option<String>, text: &str) {
    if let Some(m) = marker {
        if text.contains(m.as_str()) {
            panic!("injected fault: record matches marker {m:?}");
        }
    }
}
