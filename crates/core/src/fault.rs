//! Fault injection for the resilience and chaos harnesses.
//!
//! The panic-isolation machinery ([`crate::shard::run_shards_isolated`])
//! only matters when something actually panics, and real poison records are
//! rare by construction. This module gives the integration tests a
//! deterministic way to plant one: when the environment variable
//! `SQLOG_FAULT_MARKER` is set, any record whose statement text contains
//! that marker trips inside the stage named by `SQLOG_FAULT_STAGE`
//! (`ingest`, `dedup`, `parse`, `sessions`, `mine`, `detect`, `solve` or
//! `checkpoint`; default `parse`).
//!
//! What a trip *does* is selected by `SQLOG_FAULT_ACTION`:
//!
//! * `panic` (default) — panic with a recognizable message; the shard
//!   isolation machinery recovers and the record is quarantined as poison.
//! * `abort` — `std::process::abort()`: the process dies instantly, with no
//!   unwinding and no destructors, exactly like an external SIGKILL. The
//!   chaos harness (`tests/chaos_resume.rs`) uses this to kill the CLI at a
//!   precise point inside a stage.
//! * `stall` — touch the file named by `SQLOG_FAULT_STALL_FILE` (when set)
//!   and sleep forever. The parent test watches for the file and delivers a
//!   real `SIGKILL`, covering the genuine kill-from-outside path.
//!
//! For the `checkpoint` stage the marker is matched against the *stage
//! name* of the checkpoint being written (e.g. `SQLOG_FAULT_MARKER=mine`
//! with `SQLOG_FAULT_STAGE=checkpoint` dies between serializing the mine
//! checkpoint and its atomic rename — simulating death mid-checkpoint).
//!
//! The hook is compiled in unconditionally — integration tests link the
//! non-test build — but costs one `env::var` lookup per *shard* and nothing
//! per record while disarmed. The environment is re-read on every arm call
//! (never cached) so a single test process can exercise several stages in
//! sequence.
//!
//! Because the hook ships in production binaries, arming it is never
//! silent: the first time a run finds the marker armed it prints a loud
//! warning to stderr, so a marker variable leaking into a deployment
//! environment cannot quietly drop matching records as poison with only a
//! run-health counter as evidence.
//!
//! For the `mine` stage, which sees template ids rather than statement
//! text, the marker is matched against each record's `primary_table`
//! instead — plant it in a table name.

/// Returns the armed marker when fault injection targets `stage`.
///
/// Call once per shard, outside the per-record loop.
pub(crate) fn armed(stage: &str) -> Option<String> {
    let marker = std::env::var("SQLOG_FAULT_MARKER").ok()?;
    if marker.is_empty() {
        return None;
    }
    let target = std::env::var("SQLOG_FAULT_STAGE").unwrap_or_else(|_| "parse".to_string());
    if target != stage {
        return None;
    }
    // Once per process, not per shard: the point is an unmissable trace in
    // a production run's stderr, not a log flood.
    static WARNED: std::sync::Once = std::sync::Once::new();
    WARNED.call_once(|| {
        eprintln!(
            "WARNING: fault injection is ARMED (SQLOG_FAULT_MARKER={marker:?}, stage {target:?}): \
             matching records will panic and be quarantined as poison. \
             Unset SQLOG_FAULT_MARKER unless this is a resilience test."
        );
    });
    Some(marker)
}

/// Describes the armed fault injection regardless of target stage, or
/// `None` while disarmed. The pipeline routes this through the obs event
/// sink (when one is configured) so the arming warning reaches machine
/// consumers of `--trace-events`, not just stderr.
pub(crate) fn armed_description() -> Option<String> {
    let marker = std::env::var("SQLOG_FAULT_MARKER").ok()?;
    if marker.is_empty() {
        return None;
    }
    let stage = std::env::var("SQLOG_FAULT_STAGE").unwrap_or_else(|_| "parse".to_string());
    Some(format!(
        "fault injection is ARMED: marker {marker:?}, stage {stage:?} — \
         matching records will panic and be quarantined as poison"
    ))
}

/// Trips when `text` contains the armed marker: panics, aborts, or stalls
/// according to `SQLOG_FAULT_ACTION`. No-op while disarmed.
pub(crate) fn trip(marker: &Option<String>, text: &str) {
    let Some(m) = marker else { return };
    if !text.contains(m.as_str()) {
        return;
    }
    match std::env::var("SQLOG_FAULT_ACTION").as_deref() {
        Ok("abort") => {
            // Flush nothing, unwind nothing: the closest in-process stand-in
            // for an external SIGKILL.
            eprintln!("injected fault: aborting on marker {m:?}");
            std::process::abort();
        }
        Ok("stall") => {
            eprintln!("injected fault: stalling on marker {m:?}");
            if let Ok(path) = std::env::var("SQLOG_FAULT_STALL_FILE") {
                // The touch tells the watching parent we reached the injection
                // point; it answers with a real SIGKILL.
                let _ = std::fs::write(&path, b"stalled\n");
            }
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
        _ => panic!("injected fault: record matches marker {m:?}"),
    }
}
