//! # sqlog-core — the SQL query-log cleaning framework
//!
//! Reproduction of the framework of *"Cleaning Antipatterns in an SQL Query
//! Log"* (Arzamasova, Schäler, Böhm, 2018): a preprocessing pipeline that
//! takes a raw query log and produces a clean one, plus pattern and
//! antipattern statistics (Fig. 1 of the paper):
//!
//! 1. **delete duplicates** — identical statements from one user within a
//!    small time window ([`dedup`]),
//! 2. **parse statements** — drop syntax errors and non-SELECTs, build
//!    skeletons and intern templates ([`parse_step`], [`store`]),
//! 3. **mine patterns** — per-user sessions, frequency and userPopularity
//!    ([`mine`]),
//! 4. **detect antipatterns** — DW/DS/DF-Stifle, CTH candidates, SNC, plus
//!    registered extensions ([`detect`], [`ext`]),
//! 5. **solve antipatterns** — rewrite solvable instances, emit the clean
//!    and removal logs and statistics ([`solve`], [`stats`]).
//!
//! ```
//! use sqlog_core::{Pipeline, PipelineConfig};
//! use sqlog_catalog::skyserver_catalog;
//! use sqlog_log::{LogEntry, QueryLog, Timestamp};
//!
//! let catalog = skyserver_catalog();
//! let log = QueryLog::from_entries(vec![
//!     LogEntry::minimal(0, "SELECT name FROM Employee WHERE empId = 8",
//!                       Timestamp::from_secs(0)).with_user("10.0.0.1"),
//!     LogEntry::minimal(1, "SELECT name FROM Employee WHERE empId = 1",
//!                       Timestamp::from_secs(1)).with_user("10.0.0.1"),
//! ]);
//! let result = Pipeline::new(&catalog).run(&log);
//! assert_eq!(result.stats.solved_instances, 1);
//! assert_eq!(
//!     result.clean_log.entries[0].statement,
//!     "SELECT empId, name FROM Employee WHERE empId IN (8, 1)",
//! );
//! ```

#![warn(missing_docs)]

pub mod checkpoint;
pub mod config;
pub mod dedup;
pub mod detect;
pub mod ext;
mod fault;
pub mod ingest;
pub mod mine;
mod parse_cache;
pub mod parse_step;
pub mod pipeline;
pub mod recommend;
pub mod report;
pub mod run_report;
pub mod shard;
pub mod solve;
pub mod stats;
pub mod store;
pub mod sws;

pub use checkpoint::{
    config_fingerprint, run_checkpointed, CheckpointOptions, CheckpointOutcome, Manifest, RunDir,
    Stage, CHECKPOINT_SCHEMA, MANIFEST_SCHEMA,
};
pub use config::PipelineConfig;
pub use dedup::{dedup, dedup_view, dedup_view_traced, DedupStats};
pub use detect::{AntipatternClass, AntipatternInstance, DetectCtx, Detector};
pub use ext::{ExtensionRegistry, Solver, SolverSet};
pub use ingest::{ingest_file_traced, ingest_slice_traced};
pub use mine::{
    build_sessions, build_sessions_view, build_sessions_view_traced, mine_patterns,
    mine_patterns_sharded, mine_patterns_traced, MinedPatterns, PatternData, Session, Sessions,
};
pub use parse_step::{
    parse_log, parse_view, parse_view_traced, parse_view_with, ParseCacheStats, ParseOptions,
    ParseStats, ParsedLog, ParsedRecord,
};
pub use pipeline::{DetectOutput, Pipeline, PipelineResult};
pub use recommend::{evaluate_against_marks, RecommendationEval, Recommender};
pub use report::{render_pattern_table, render_statistics, top_patterns, PatternRow};
pub use run_report::{statistics_from_json, statistics_to_json, RunReport, RUN_REPORT_SCHEMA};
pub use shard::{
    balance_chunks, resolve_threads, run_shards_isolated, run_shards_traced, ShardTrace,
};
pub use solve::{apply_solutions, SolveOutcome, SolvedRewrite};
pub use stats::{ClassCounts, RunHealth, StageTimings, Statistics};
pub use store::{TemplateId, TemplateStore};
pub use sws::{classify_sws, sws_grid, union_windows, SwsResult, SwsThresholds};
