//! Pipeline configuration.

use serde::{Deserialize, Serialize};

/// Tunable parameters of the cleaning pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Duplicate time threshold in milliseconds (§5.2, Table 4). `None`
    /// means unrestricted: every identical re-submission by the same user is
    /// a duplicate regardless of elapsed time.
    pub duplicate_threshold_ms: Option<u64>,
    /// Maximum gap between two statements of one user before a new session
    /// (and thus a new potential pattern instance) starts. Def. 8 requires
    /// instances to be uninterrupted; the gap bounds "short time between
    /// them" (§4.1.1).
    pub session_gap_ms: u64,
    /// Maximum n-gram length mined as a multi-template pattern.
    pub max_ngram: usize,
    /// Minimum frequency for a mined pattern to be reported.
    pub min_pattern_frequency: u64,
    /// Maximum time gap between a CTH source query and a follow-up
    /// (candidates beyond this are not considered part of one hunt).
    pub cth_max_gap_ms: u64,
    /// How many subsequent queries after a potential CTH source are examined
    /// for follow-ups.
    pub cth_lookahead: usize,
    /// Enforce Definition 11's third axiom: the Stifle filter column must be
    /// a key attribute of the queried table. The paper: "We could have
    /// omitted the third axiom in principle: This would have simplified
    /// things, but with the potential drawback of some false positives."
    /// Setting this to `false` is that ablation.
    pub require_key_attribute: bool,
    /// Include the filter column in the projection of a DW rewrite, as in
    /// the paper's Example 10 (`SELECT empId, name ... WHERE empId IN (...)`),
    /// so result rows remain attributable to the merged constants.
    pub rewrite_adds_filter_column: bool,
    /// Number of parser threads (0 = one per available core). Only consulted
    /// by the standalone [`crate::parse_step::parse_log`] helper; the
    /// pipeline itself uses [`PipelineConfig::parallelism`] for every stage.
    pub parse_threads: usize,
    /// Worker threads for the sharded pipeline stages (dedup, parse,
    /// sessions, mining, detection). `0` = one per available core, `1` =
    /// fully sequential. Output is byte-identical for every value (§5
    /// stages shard by user/session and merge deterministically).
    pub parallelism: usize,
    /// Maximum expression/subquery/join nesting depth the parser will
    /// follow before rejecting a statement as a resource bomb (counted with
    /// syntax errors; see [`sqlog_sql::ParseLimits::max_depth`]).
    pub max_parse_depth: usize,
    /// Maximum statement length in bytes accepted by the parser
    /// ([`sqlog_sql::ParseLimits::max_statement_bytes`]).
    pub max_statement_bytes: usize,
    /// Maximum lexed tokens per statement
    /// ([`sqlog_sql::ParseLimits::max_tokens`]).
    pub max_parse_tokens: usize,
    /// Enable the template-aware parse cache: statements whose raw shape
    /// (text modulo whitespace, case and literals) was already parsed skip
    /// lexing/parsing and reuse the cached template and facts. Output is
    /// byte-identical with the cache on or off; `--no-parse-cache`
    /// disables it for A/B runs.
    pub parse_cache: bool,
    /// Debug builds cross-check this many parse-cache hits per worker
    /// against a full parse (0 disables the self-check).
    pub parse_cache_crosscheck: usize,
    /// Enable the dedup shape prefilter: records whose allocation-free shape
    /// key is new for their user are kept without normalization or
    /// fingerprinting. Output is byte-identical on or off (equal normalized
    /// text implies an equal shape key); `--no-dedup-prefilter` disables it
    /// for A/B runs.
    pub dedup_prefilter: bool,
    /// Enable batched solver rewrites: synthesize each template's rewrite
    /// AST once and substitute literals per instance instead of re-parsing
    /// every record. Output is byte-identical on or off;
    /// `--no-solve-batching` disables it for A/B runs.
    pub solve_batching: bool,
    /// Observability sink. [`sqlog_obs::Recorder::disabled`] (the default)
    /// reduces every instrumentation point to a branch-on-a-bool no-op;
    /// an enabled recorder collects per-stage/per-shard spans, counters
    /// and latency histograms for `--trace-events` / `--stats-json`.
    /// Cloning the config shares the recorder (and its collected data).
    /// `PartialEq` compares only enablement, never collected data, so the
    /// derived config equality still means "same tunables".
    pub recorder: sqlog_obs::Recorder,
}

impl PipelineConfig {
    /// The parser resource guards as a [`sqlog_sql::ParseLimits`].
    pub fn parse_limits(&self) -> sqlog_sql::ParseLimits {
        sqlog_sql::ParseLimits {
            max_depth: self.max_parse_depth,
            max_statement_bytes: self.max_statement_bytes,
            max_tokens: self.max_parse_tokens,
        }
    }

    /// The parse-stage knobs as a [`crate::parse_step::ParseOptions`].
    pub fn parse_options(&self) -> crate::parse_step::ParseOptions {
        crate::parse_step::ParseOptions {
            limits: self.parse_limits(),
            cache: self.parse_cache,
            crosscheck: self.parse_cache_crosscheck,
        }
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            duplicate_threshold_ms: Some(1_000),
            session_gap_ms: 300_000,
            max_ngram: 3,
            min_pattern_frequency: 2,
            cth_max_gap_ms: 300_000,
            cth_lookahead: 8,
            require_key_attribute: true,
            rewrite_adds_filter_column: true,
            parse_threads: 0,
            parallelism: 0,
            max_parse_depth: sqlog_sql::ParseLimits::default().max_depth,
            max_statement_bytes: sqlog_sql::ParseLimits::default().max_statement_bytes,
            max_parse_tokens: sqlog_sql::ParseLimits::default().max_tokens,
            parse_cache: true,
            parse_cache_crosscheck: 64,
            dedup_prefilter: true,
            solve_batching: true,
            recorder: sqlog_obs::Recorder::disabled(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_choices() {
        let c = PipelineConfig::default();
        // §6.2 picks 1 second as the duplicate threshold.
        assert_eq!(c.duplicate_threshold_ms, Some(1_000));
        assert!(c.max_ngram >= 2);
    }
}
