//! Report rendering: the paper's tables as plain text.

use crate::detect::AntipatternClass;
use crate::mine::MinedPatterns;
use crate::stats::Statistics;
use crate::store::{TemplateId, TemplateStore};
use std::collections::HashMap;
use std::fmt::Write as _;

/// One row of a top-patterns table (Tables 6 and 7 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct PatternRow {
    /// 1-based rank by frequency.
    pub rank: usize,
    /// Frequency (Def. 9).
    pub frequency: u64,
    /// userPopularity (Def. 10).
    pub user_popularity: usize,
    /// Coverage of the mined queries, in percent.
    pub coverage_pct: f64,
    /// Antipattern class, when the pattern is marked.
    pub class: Option<AntipatternClass>,
    /// The first skeleton statements of the pattern (up to two, as printed
    /// in Table 6).
    pub skeletons: Vec<String>,
    /// The pattern key.
    pub key: Vec<TemplateId>,
}

/// Builds the ranked top-`k` pattern rows.
pub fn top_patterns(
    mined: &MinedPatterns,
    marks: &HashMap<Vec<TemplateId>, AntipatternClass>,
    store: &TemplateStore,
    k: usize,
    min_frequency: u64,
) -> Vec<PatternRow> {
    let total = mined.total_queries.max(1) as f64;
    mined
        .ranked(min_frequency)
        .into_iter()
        .take(k)
        .enumerate()
        .map(|(i, (key, data))| PatternRow {
            rank: i + 1,
            frequency: data.frequency,
            user_popularity: data.users.len(),
            coverage_pct: 100.0 * (data.frequency * key.len() as u64) as f64 / total,
            class: marks.get(key).cloned(),
            skeletons: key
                .iter()
                .take(2)
                .map(|&t| store.with(t, |tpl| tpl.full.clone()))
                .collect(),
            key: key.clone(),
        })
        .collect()
}

fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_string()
    } else {
        let cut: String = s.chars().take(max.saturating_sub(1)).collect();
        format!("{cut}…")
    }
}

/// Renders pattern rows as an aligned text table.
pub fn render_pattern_table(rows: &[PatternRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>4} {:>12} {:>8} {:>7} {:<12} skeleton",
        "rank", "frequency", "userPop", "cov%", "type"
    );
    for r in rows {
        let class = r.class.as_ref().map_or("pattern", |c| c.label());
        let skel = r.skeletons.first().map(String::as_str).unwrap_or("");
        let _ = writeln!(
            out,
            "{:>4} {:>12} {:>8} {:>7.2} {:<12} {}",
            r.rank,
            r.frequency,
            r.user_popularity,
            r.coverage_pct,
            class,
            truncate(skel, 90)
        );
    }
    out
}

/// Renders the statistics block (the paper's Table 5).
pub fn render_statistics(s: &Statistics) -> String {
    let mut out = String::new();
    let mut row = |name: &str, value: String| {
        let _ = writeln!(out, "{name:<44} {value}");
    };
    row("Size of original query log", s.original_size.to_string());
    row(
        "Size after deleting duplicates",
        format!(
            "{} ({:.2}%)",
            s.after_dedup,
            s.pct_of_original(s.after_dedup)
        ),
    );
    row(
        "Count of SELECT queries",
        format!(
            "{} ({:.2}%)",
            s.select_count,
            s.pct_of_original(s.select_count)
        ),
    );
    row("  dropped: syntax errors", s.syntax_errors.to_string());
    row("  dropped: non-SELECT", s.non_select.to_string());
    row(
        "Final log size",
        format!("{} ({:.2}%)", s.final_size, s.pct_of_original(s.final_size)),
    );
    row(
        "Removal log size",
        format!(
            "{} ({:.2}%)",
            s.removal_size,
            s.pct_of_original(s.removal_size)
        ),
    );
    row("Count of patterns", s.pattern_count.to_string());
    row(
        "Maximal pattern frequency",
        s.max_pattern_frequency.to_string(),
    );
    for (label, counts) in &s.per_class {
        row(
            &format!("Count of distinct {label}"),
            counts.distinct.to_string(),
        );
        row(
            &format!("Count of queries in all {label}"),
            counts.queries.to_string(),
        );
    }
    row(
        "Solvable-antipattern coverage",
        format!("{:.2}% of SELECTs", s.solvable_coverage_pct()),
    );
    row("Solved instances", s.solved_instances.to_string());
    row("Solved queries", s.solved_queries.to_string());
    row(
        "Rewritten statements emitted",
        s.rewritten_statements.to_string(),
    );
    let t = &s.timings;
    row(
        "Stage timings (ms)",
        format!(
            "ingest {} | sort {} | dedup {} | parse {} | sessions {} | mine {} | detect {} \
             | solve {} | report {} | total {}",
            t.ingest_ms,
            t.sort_ms,
            t.dedup_ms,
            t.parse_ms,
            t.sessions_ms,
            t.mine_ms,
            t.detect_ms,
            t.solve_ms,
            t.report_ms,
            t.total_ms
        ),
    );
    let c = &s.parse_cache;
    if c.enabled {
        row(
            "Parse cache",
            format!(
                "{} hits | {} misses | {} fallbacks ({:.1}% hit rate)",
                c.hits,
                c.misses,
                c.fallbacks,
                c.hit_rate_pct()
            ),
        );
    } else {
        row("Parse cache", "disabled".to_string());
    }
    let h = &s.run_health;
    if h.is_clean() {
        row("Run health", "clean (no faults)".to_string());
    } else if !h.completed_degraded() {
        // Interrupted and resumed, but nothing was lost along the way.
        row(
            "Run health",
            format!(
                "clean (resumed after {} interruption{})",
                h.interruptions,
                if h.interruptions == 1 { "" } else { "s" }
            ),
        );
    } else {
        row("Run health", "degraded".to_string());
        row(
            "  quarantined input lines",
            format!(
                "{} ({} invalid UTF-8)",
                h.quarantined_lines, h.invalid_utf8_lines
            ),
        );
        row("  limit-rejected statements", h.limit_rejected.to_string());
        row("  poison records skipped", h.poison_records.to_string());
        row("  poison sessions skipped", h.poison_sessions.to_string());
        row(
            "  degraded (recovered) shards",
            h.degraded_shards.to_string(),
        );
        if h.interruptions > 0 {
            row("  interruptions resumed from", h.interruptions.to_string());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mine::PatternData;

    #[test]
    fn top_patterns_ranks_and_marks() {
        let store = TemplateStore::new();
        let t0 = store.intern(sqlog_skeleton::QueryTemplate::of_query(
            &sqlog_sql::parse_query("SELECT a FROM t WHERE x = 1").unwrap(),
        ));
        let t1 = store.intern(sqlog_skeleton::QueryTemplate::of_query(
            &sqlog_sql::parse_query("SELECT b FROM t WHERE x = 1").unwrap(),
        ));
        let mut mined = MinedPatterns {
            total_queries: 100,
            ..Default::default()
        };
        mined.patterns.insert(
            vec![t0],
            PatternData {
                frequency: 60,
                users: [0].into_iter().collect(),
            },
        );
        mined.patterns.insert(
            vec![t1],
            PatternData {
                frequency: 30,
                users: (0..5).collect(),
            },
        );
        let mut marks = HashMap::new();
        marks.insert(vec![t0], AntipatternClass::DwStifle);

        let rows = top_patterns(&mined, &marks, &store, 10, 1);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].rank, 1);
        assert_eq!(rows[0].frequency, 60);
        assert_eq!(rows[0].class, Some(AntipatternClass::DwStifle));
        assert_eq!(rows[1].class, None);
        assert!(rows[0].skeletons[0].contains("<num>"));

        let table = render_pattern_table(&rows);
        assert!(table.contains("DW-Stifle"));
        assert!(table.contains("pattern"));
    }

    #[test]
    fn statistics_render_contains_key_rows() {
        let s = Statistics {
            original_size: 1_000,
            after_dedup: 950,
            select_count: 900,
            final_size: 700,
            ..Default::default()
        };
        let text = render_statistics(&s);
        assert!(text.contains("Size of original query log"));
        assert!(text.contains("95.00%"));
        assert!(text.contains("70.00%"));
    }

    #[test]
    fn statistics_render_reports_run_health() {
        let clean = render_statistics(&Statistics::default());
        assert!(clean.contains("clean (no faults)"));

        let mut s = Statistics::default();
        s.run_health.quarantined_lines = 3;
        s.run_health.invalid_utf8_lines = 1;
        s.run_health.poison_records = 2;
        let degraded = render_statistics(&s);
        assert!(degraded.contains("degraded"));
        assert!(degraded.contains("3 (1 invalid UTF-8)"));
        assert!(degraded.contains("poison records skipped"));
    }

    #[test]
    fn truncate_respects_char_boundaries() {
        assert_eq!(truncate("äöü", 2), "ä…");
        assert_eq!(truncate("abc", 3), "abc");
    }
}
