//! Searching-nullable-columns detection (Definition 16, §5.4).
//!
//! `col = NULL` and `col <> NULL` never match anything in SQL's three-valued
//! logic; the intended forms are `IS NULL` / `IS NOT NULL`. The paper uses
//! SNC as the worked example of extending the framework with a new
//! antipattern: a single-query pattern with a direct rewrite.

use super::{AntipatternClass, AntipatternInstance, DetectCtx, Detector};

/// Detects SNC occurrences.
pub struct SncDetector;

impl Detector for SncDetector {
    fn name(&self) -> &str {
        "snc"
    }

    fn detect(&self, ctx: &DetectCtx<'_>) -> Vec<AntipatternInstance> {
        // Iterate session-wise (not over all records) so that detection can
        // shard by session range without double-counting; every parsed
        // record belongs to exactly one session.
        let mut out = Vec::new();
        for session in ctx.sessions {
            for &ri in &session.records {
                let rec = &ctx.records[ri];
                if rec.profile.null_comparisons().is_empty() {
                    continue;
                }
                out.push(AntipatternInstance {
                    class: AntipatternClass::Snc,
                    records: vec![ri],
                    identity: vec![rec.template],
                    marker_keys: vec![vec![rec.template]],
                    solvable: true,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use crate::mine::build_sessions;
    use crate::parse_step::parse_log;
    use crate::store::TemplateStore;
    use sqlog_catalog::skyserver_catalog;
    use sqlog_log::{LogEntry, LogView, QueryLog, Timestamp};

    fn detect(rows: &[&str]) -> Vec<AntipatternInstance> {
        let log = QueryLog::from_entries(
            rows.iter()
                .enumerate()
                .map(|(i, s)| {
                    LogEntry::minimal(i as u64, *s, Timestamp::from_secs(i as i64)).with_user("u")
                })
                .collect(),
        );
        let store = TemplateStore::new();
        let parsed = parse_log(&log, &store, 1);
        let sessions = build_sessions(&log, &parsed.records, 300_000);
        let catalog = skyserver_catalog();
        let config = PipelineConfig::default();
        let view = LogView::identity(&log);
        let ctx = DetectCtx {
            log: &view,
            records: &parsed.records,
            sessions: &sessions.sessions,
            store: &store,
            catalog: &catalog,
            config: &config,
        };
        SncDetector.detect(&ctx)
    }

    #[test]
    fn detects_paper_examples() {
        let instances = detect(&[
            "SELECT * FROM Bugs WHERE assigned_to = NULL",
            "SELECT * FROM Bugs WHERE assigned_to <> NULL",
            "SELECT * FROM Bugs WHERE assigned_to IS NULL",
        ]);
        assert_eq!(instances.len(), 2);
        assert!(instances
            .iter()
            .all(|i| i.class == AntipatternClass::Snc && i.solvable));
    }

    #[test]
    fn snc_inside_conjunction_detected() {
        let instances = detect(&["SELECT a FROM t WHERE x = 1 AND y = NULL"]);
        assert_eq!(instances.len(), 1);
    }

    #[test]
    fn null_in_select_list_is_fine() {
        let instances = detect(&["SELECT NULL FROM t WHERE x = 1"]);
        assert!(instances.is_empty());
    }
}
