//! Circuitous-Treasure-Hunt candidate detection (Definition 15).
//!
//! A CTH candidate is a source query followed (closely, by the same user) by
//! queries that
//!
//! * have a different skeleton than the source (SQ₁ ≠ SQ₂),
//! * consist of exactly one equality predicate (CP = 1, θ = equality), and
//! * filter on an attribute the source query's SELECT clause may have
//!   produced.
//!
//! Re-querying being off the table (§1), this yields *candidates* only; the
//! true/false decision requires domain knowledge — in this reproduction the
//! workload generator's ground-truth labels play that role (§6.6).

use super::{AntipatternClass, AntipatternInstance, DetectCtx, Detector};
use crate::store::TemplateId;

/// Detects CTH candidates.
pub struct CthDetector;

impl Detector for CthDetector {
    fn name(&self) -> &str {
        "cth"
    }

    fn detect(&self, ctx: &DetectCtx<'_>) -> Vec<AntipatternInstance> {
        let mut out = Vec::new();
        let lookahead = ctx.config.cth_lookahead.max(1);
        let max_gap = ctx.config.cth_max_gap_ms;

        for session in ctx.sessions {
            let recs = &session.records;
            let mut k = 0usize;
            while k < recs.len() {
                let src_ri = recs[k];
                let src = &ctx.records[src_ri];
                // A source must produce *something* a follow-up could use.
                if !src.output.wildcard && src.output.names.is_empty() {
                    k += 1;
                    continue;
                }
                let src_ms = ctx.record_millis(src_ri);
                let mut followups: Vec<usize> = Vec::new();
                let mut follow_tpls: Vec<TemplateId> = Vec::new();
                for &f_ri in recs
                    .iter()
                    .take(recs.len().min(k + 1 + lookahead))
                    .skip(k + 1)
                {
                    let f = &ctx.records[f_ri];
                    // Def. 15: SQ₁ ≠ SQ₂, CP = 1, θ = equality.
                    if f.template == src.template {
                        break;
                    }
                    let Some((col, _value)) = f.profile.single_equality() else {
                        break;
                    };
                    // The constant must be an attribute the source produced.
                    if !src.output.may_contain(col) {
                        break;
                    }
                    // Close in time: a hunt is a software loop, not a visit
                    // next week. (Even human browsing within a few minutes
                    // qualifies as a *candidate* — cf. Table 9.)
                    if (ctx.record_millis(f_ri) - src_ms) as u64 > max_gap {
                        break;
                    }
                    followups.push(f_ri);
                    if !follow_tpls.contains(&f.template) {
                        follow_tpls.push(f.template);
                    }
                }
                if followups.is_empty() {
                    k += 1;
                    continue;
                }

                let mut records = Vec::with_capacity(1 + followups.len());
                records.push(src_ri);
                records.extend_from_slice(&followups);

                // Identity: source template + distinct follow-up templates.
                let mut identity = vec![src.template];
                identity.extend(follow_tpls.iter().copied());

                // Marker keys: each (source, follow-up) pair plus the full
                // distinct sequence.
                let mut marker_keys: Vec<Vec<TemplateId>> =
                    follow_tpls.iter().map(|&f| vec![src.template, f]).collect();
                if identity.len() > 2 {
                    marker_keys.push(identity.clone());
                }

                let n_follow = followups.len();
                out.push(AntipatternInstance {
                    class: AntipatternClass::CthCandidate,
                    records,
                    identity,
                    marker_keys,
                    solvable: false,
                });
                // Continue after the follow-ups.
                k += 1 + n_follow;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use crate::mine::build_sessions;
    use crate::parse_step::parse_log;
    use crate::store::TemplateStore;
    use sqlog_catalog::skyserver_catalog;
    use sqlog_log::{LogEntry, LogView, QueryLog, Timestamp};

    fn detect_at(rows: &[(&str, i64)]) -> Vec<AntipatternInstance> {
        let log = QueryLog::from_entries(
            rows.iter()
                .enumerate()
                .map(|(i, (s, secs))| {
                    LogEntry::minimal(i as u64, *s, Timestamp::from_secs(*secs)).with_user("u")
                })
                .collect(),
        );
        let store = TemplateStore::new();
        let parsed = parse_log(&log, &store, 1);
        let sessions = build_sessions(&log, &parsed.records, 600_000);
        let catalog = skyserver_catalog();
        let config = PipelineConfig::default();
        let view = LogView::identity(&log);
        let ctx = DetectCtx {
            log: &view,
            records: &parsed.records,
            sessions: &sessions.sessions,
            store: &store,
            catalog: &catalog,
            config: &config,
        };
        CthDetector.detect(&ctx)
    }

    #[test]
    fn detects_table_10_shape() {
        // The paper's CTH candidate 2: wildcard source, instant follow-up.
        let instances = detect_at(&[
            (
                "SELECT * FROM dbo.fGetNearestObjEq(145.38708,0.12532,0.1)",
                0,
            ),
            (
                "SELECT plate, fiberID, mjd, SpecObjID FROM SpecObjAll \
                 WHERE SpecObjID = 75094094447116288",
                0,
            ),
        ]);
        assert_eq!(instances.len(), 1);
        let inst = &instances[0];
        assert_eq!(inst.class, AntipatternClass::CthCandidate);
        assert_eq!(inst.records, vec![0, 1]);
        assert!(!inst.solvable);
    }

    #[test]
    fn detects_table_9_shape_with_named_output() {
        // Candidate 1: the source lists `name, type`; the follow-up filters
        // on `name`. 27 seconds apart — still a candidate.
        let instances = detect_at(&[
            (
                "SELECT name, type FROM DBObjects WHERE type='U' AND name NOT IN \
                 ('LoadEvents', 'QueryResults') ORDER BY name",
                0,
            ),
            ("SELECT description FROM DBObjects WHERE name='Galaxy'", 27),
        ]);
        assert_eq!(instances.len(), 1);
    }

    #[test]
    fn table_2_sequence_is_one_candidate() {
        // The paper's parsed-log example (Table 2): the source selects
        // `E.Id`, and the follow-ups filter on `id`. (Table 1's original
        // spelling selects `empId`, which the paper itself normalizes to
        // `Id` in Table 2 — Def. 15 is strict about the attribute name.)
        let instances = detect_at(&[
            (
                "SELECT E.Id FROM Employees E WHERE E.department = 'sales'",
                0,
            ),
            (
                "SELECT E.name, E.surname FROM Employees E WHERE E.id = 12",
                5,
            ),
            (
                "SELECT E.name, E.surname FROM Employees E WHERE E.id = 15",
                9,
            ),
            (
                "SELECT E.name, E.surname FROM Employees E WHERE E.id = 16",
                15,
            ),
        ]);
        assert_eq!(instances.len(), 1);
        let inst = &instances[0];
        assert_eq!(inst.records, vec![0, 1, 2, 3]);
        // Source template + one distinct follow-up template.
        assert_eq!(inst.identity.len(), 2);
    }

    #[test]
    fn unrelated_filter_column_is_not_a_followup() {
        let instances = detect_at(&[
            ("SELECT rowc_g, colc_g FROM photoprimary WHERE objid = 1", 0),
            ("SELECT rowc_g FROM photoobjall WHERE objid = 2", 1),
        ]);
        // Source outputs rowc_g/colc_g; follow-up filters objid → no CTH.
        assert!(instances.is_empty());
    }

    #[test]
    fn same_template_is_not_a_followup() {
        let instances = detect_at(&[
            ("SELECT objid FROM photoprimary WHERE objid = 1", 0),
            ("SELECT objid FROM photoprimary WHERE objid = 2", 1),
        ]);
        assert!(instances.is_empty());
    }

    #[test]
    fn large_gap_is_not_a_hunt() {
        let instances = detect_at(&[
            ("SELECT * FROM dbo.fGetNearestObjEq(1.0, 2.0, 0.1)", 0),
            (
                "SELECT z FROM SpecObjAll WHERE SpecObjID = 5",
                400, // 400 s > 300 s default
            ),
        ]);
        assert!(instances.is_empty());
    }

    #[test]
    fn multi_predicate_followup_rejected() {
        let instances = detect_at(&[
            ("SELECT * FROM dbo.fGetNearestObjEq(1.0, 2.0, 0.1)", 0),
            (
                "SELECT z FROM SpecObjAll WHERE SpecObjID = 5 AND plate = 3",
                1,
            ),
        ]);
        assert!(instances.is_empty());
    }
}
