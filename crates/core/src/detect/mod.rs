//! Step 4 of the pipeline: antipattern detection (Definitions 11–16).
//!
//! Detectors scan the per-user sessions for instances of the built-in
//! antipatterns — the three Stifle classes, CTH candidates, SNC — and any
//! registered extensions (§5.4). Each instance records which parsed records
//! it covers, the identity key used for "count of distinct antipatterns"
//! (Table 5), and the pattern keys that mark mined patterns as antipatterns
//! (Fig. 2a, Table 6).

pub mod cth;
pub mod snc;
pub mod stifle;

use crate::config::PipelineConfig;
use crate::mine::Session;
use crate::parse_step::ParsedRecord;
use crate::store::{TemplateId, TemplateStore};
use sqlog_catalog::Catalog;
use sqlog_log::LogView;
use std::fmt;

/// The antipattern classes the framework knows about.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AntipatternClass {
    /// Different-WHERE Stifle (Def. 12) — solvable by an `IN` merge.
    DwStifle,
    /// Different-SELECT Stifle (Def. 13) — solvable by projection union.
    DsStifle,
    /// Different-FROM Stifle (Def. 14) — solvable by a key join.
    DfStifle,
    /// Circuitous-Treasure-Hunt candidate (Def. 15) — detected, not solved.
    CthCandidate,
    /// Searching-nullable-columns (Def. 16) — solvable by `IS [NOT] NULL`.
    Snc,
    /// An extension antipattern registered via
    /// [`crate::ext::ExtensionRegistry`].
    Custom(String),
}

impl AntipatternClass {
    /// Short display label.
    pub fn label(&self) -> &str {
        match self {
            AntipatternClass::DwStifle => "DW-Stifle",
            AntipatternClass::DsStifle => "DS-Stifle",
            AntipatternClass::DfStifle => "DF-Stifle",
            AntipatternClass::CthCandidate => "CTH",
            AntipatternClass::Snc => "SNC",
            AntipatternClass::Custom(name) => name,
        }
    }
}

impl fmt::Display for AntipatternClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// One detected antipattern occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AntipatternInstance {
    /// The class.
    pub class: AntipatternClass,
    /// Indices into the parsed-record vector, in log order.
    pub records: Vec<usize>,
    /// Identity for distinct-antipattern counting: the instance's distinct
    /// templates, canonically ordered.
    pub identity: Vec<TemplateId>,
    /// Mined-pattern keys this instance marks as antipatterns.
    pub marker_keys: Vec<Vec<TemplateId>>,
    /// Whether a solving rewrite exists for this class.
    pub solvable: bool,
}

/// Everything a detector may look at.
///
/// Detectors must be **session-local**: each instance they emit comes from
/// the records of a single session. The pipeline relies on this to shard
/// detection across contiguous session ranges — a shard's context differs
/// only in `sessions`, and concatenating shard outputs in order reproduces
/// the sequential result.
pub struct DetectCtx<'a> {
    /// The pre-cleaned log, as a view over the original entries.
    pub log: &'a LogView<'a>,
    /// Parsed records (all of them — `records[ri]` stays valid for every
    /// session, sharded or not).
    pub records: &'a [ParsedRecord],
    /// The per-user sessions this detector invocation should scan (a shard
    /// of the full session list, or all of it).
    pub sessions: &'a [Session],
    /// Interned templates.
    pub store: &'a TemplateStore,
    /// Schema catalog (key-attribute checks).
    pub catalog: &'a Catalog,
    /// Pipeline configuration.
    pub config: &'a PipelineConfig,
}

impl DetectCtx<'_> {
    /// Timestamp (ms) of a parsed record.
    pub fn record_millis(&self, record_idx: usize) -> i64 {
        self.log
            .entry(self.records[record_idx].entry_idx as usize)
            .timestamp
            .millis()
    }

    /// The log entry behind a parsed record.
    pub fn record_entry(&self, record_idx: usize) -> &sqlog_log::LogEntry {
        self.log.entry(self.records[record_idx].entry_idx as usize)
    }
}

/// A pluggable antipattern detector (§5.4: "one first comes up with its
/// formal definition … based on the definition, one provides a detection
/// rule").
pub trait Detector: Sync {
    /// Human-readable detector name.
    fn name(&self) -> &str;
    /// Scans the log and returns all instances found.
    fn detect(&self, ctx: &DetectCtx<'_>) -> Vec<AntipatternInstance>;
}

/// Runs the built-in detectors (and none of the extensions — the pipeline
/// appends those itself). Instances are returned sorted by their first
/// record, i.e. in order of appearance in the log; the solving step relies
/// on this order (§5.5: "solving starts with the antipattern which appears
/// in the log first").
pub fn detect_builtin(ctx: &DetectCtx<'_>) -> Vec<AntipatternInstance> {
    let mut out = Vec::new();
    out.extend(stifle::StifleDetector.detect(ctx));
    out.extend(cth::CthDetector.detect(ctx));
    out.extend(snc::SncDetector.detect(ctx));
    sort_instances(&mut out);
    let rec = &ctx.config.recorder;
    if rec.is_enabled() {
        rec.counter("detect.instances", out.len() as u64);
        for inst in &out {
            rec.counter(class_counter_name(&inst.class), 1);
        }
    }
    out
}

/// Static counter name for a class's detected instances. Extension classes
/// share one bucket — counter names must be `'static`, and the per-class
/// split for extensions is available from `Statistics::per_class` anyway.
fn class_counter_name(class: &AntipatternClass) -> &'static str {
    match class {
        AntipatternClass::DwStifle => "detect.dw_stifle",
        AntipatternClass::DsStifle => "detect.ds_stifle",
        AntipatternClass::DfStifle => "detect.df_stifle",
        AntipatternClass::CthCandidate => "detect.cth",
        AntipatternClass::Snc => "detect.snc",
        AntipatternClass::Custom(_) => "detect.custom",
    }
}

/// Sorts instances by order of appearance (first covered record, then
/// class). The remaining tie-breaks make the order *total* over
/// distinguishable instances, so the result does not depend on the order
/// detectors (or detection shards) contributed them.
pub fn sort_instances(instances: &mut [AntipatternInstance]) {
    instances.sort_by(|a, b| {
        let fa = a.records.first().copied().unwrap_or(usize::MAX);
        let fb = b.records.first().copied().unwrap_or(usize::MAX);
        fa.cmp(&fb)
            .then_with(|| a.class.cmp(&b.class))
            .then_with(|| a.records.cmp(&b.records))
            .then_with(|| a.identity.cmp(&b.identity))
            .then_with(|| a.marker_keys.cmp(&b.marker_keys))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_labels() {
        assert_eq!(AntipatternClass::DwStifle.label(), "DW-Stifle");
        assert_eq!(AntipatternClass::Custom("X".into()).label(), "X");
        assert_eq!(AntipatternClass::CthCandidate.to_string(), "CTH");
    }

    #[test]
    fn sort_orders_by_first_record() {
        let mk = |first: usize, class: AntipatternClass| AntipatternInstance {
            class,
            records: vec![first, first + 1],
            identity: vec![],
            marker_keys: vec![],
            solvable: true,
        };
        let mut v = vec![
            mk(10, AntipatternClass::DsStifle),
            mk(2, AntipatternClass::CthCandidate),
            mk(2, AntipatternClass::DwStifle),
        ];
        sort_instances(&mut v);
        assert_eq!(v[0].records[0], 2);
        assert_eq!(v[0].class, AntipatternClass::DwStifle);
        assert_eq!(v[2].records[0], 10);
    }
}
