//! Stifle detection (Definitions 11–14).
//!
//! A Stifle instance is a maximal uninterrupted run of queries from one user
//! where every query has exactly one equality predicate on a key attribute
//! (Def. 11) and every adjacent pair stands in the *same* class relation:
//!
//! * **DW** (Def. 12): same skeleton, different constant,
//! * **DS** (Def. 13): same FROM and same WHERE (incl. constant), different
//!   SELECT clause,
//! * **DF** (Def. 14): different FROM, same WHERE (incl. constant).
//!
//! Runs shorter than two queries are not instances.

use super::{AntipatternClass, AntipatternInstance, DetectCtx, Detector};
use crate::parse_step::ParsedRecord;
use crate::store::{TemplateId, TemplateStore};
use sqlog_skeleton::ValueKind;

/// Detects the three Stifle classes.
pub struct StifleDetector;

/// The Def. 11 facts of one record, precomputed per run attempt.
struct Shape<'a> {
    template: TemplateId,
    column: &'a str,
    value: &'a ValueKind,
}

fn shape<'a>(ctx: &DetectCtx<'_>, rec: &'a ParsedRecord) -> Option<Shape<'a>> {
    let (column, value) = rec.profile.single_equality()?;
    // Def. 11: θ is equality on a *constant* (the log records values, and
    // the DW merge needs literals), and filCol is a key attribute.
    if !value.is_constant() {
        return None;
    }
    if ctx.config.require_key_attribute
        && !ctx
            .catalog
            .is_key_attribute(rec.primary_table.as_deref(), column)
    {
        return None;
    }
    Some(Shape {
        template: rec.template,
        column,
        value,
    })
}

/// The pairwise class relation between two Def.-11 queries.
fn relation(store: &TemplateStore, a: &Shape<'_>, b: &Shape<'_>) -> Option<AntipatternClass> {
    if a.template == b.template {
        // Same skeleton. Different constant → DW; identical constant would
        // be a duplicate, which is not a Stifle relation.
        return (a.value != b.value).then_some(AntipatternClass::DwStifle);
    }
    // Different skeletons: compare clause-wise (Defs. 13–14). The WHERE
    // clauses must agree *including* the constant.
    if a.column != b.column || a.value != b.value {
        return None;
    }
    store.with(a.template, |ta| {
        store.with(b.template, |tb| {
            if ta.sfc == tb.sfc && ta.ssc != tb.ssc && ta.swc == tb.swc {
                Some(AntipatternClass::DsStifle)
            } else if ta.sfc != tb.sfc && ta.swc == tb.swc {
                Some(AntipatternClass::DfStifle)
            } else {
                None
            }
        })
    })
}

/// Identity + marker keys for a finished run.
fn finish_run(class: AntipatternClass, run: &[(usize, TemplateId)]) -> AntipatternInstance {
    let records: Vec<usize> = run.iter().map(|(ri, _)| *ri).collect();
    // Distinct templates in first-appearance order.
    let mut distinct: Vec<TemplateId> = Vec::new();
    for (_, t) in run {
        if !distinct.contains(t) {
            distinct.push(*t);
        }
    }
    // Identity: canonical (sorted) distinct templates.
    let mut identity = distinct.clone();
    identity.sort_unstable();

    // Marker keys: the mined-pattern shapes this instance manifests as.
    let mut marker_keys: Vec<Vec<TemplateId>> = Vec::new();
    match class {
        AntipatternClass::DwStifle => {
            let t = distinct[0];
            marker_keys.push(vec![t]);
            marker_keys.push(vec![t, t]);
            marker_keys.push(vec![t, t, t]);
        }
        _ => {
            // All rotations of the distinct-template cycle: an alternation
            // A B A B … manifests as both [A,B] and [B,A] (Table 6 lists
            // both orders of the DS pair as separate antipatterns).
            let k = distinct.len();
            for r in 0..k {
                let mut rot: Vec<TemplateId> = Vec::with_capacity(k);
                rot.extend_from_slice(&distinct[r..]);
                rot.extend_from_slice(&distinct[..r]);
                marker_keys.push(rot);
            }
        }
    }

    AntipatternInstance {
        class,
        records,
        identity,
        marker_keys,
        solvable: true,
    }
}

impl Detector for StifleDetector {
    fn name(&self) -> &str {
        "stifle"
    }

    fn detect(&self, ctx: &DetectCtx<'_>) -> Vec<AntipatternInstance> {
        let mut out = Vec::new();
        for session in ctx.sessions {
            let recs = &session.records;
            let mut i = 0usize;
            while i < recs.len() {
                let Some(first) = shape(ctx, &ctx.records[recs[i]]) else {
                    i += 1;
                    continue;
                };
                // Grow the longest run of one class starting at i.
                let mut run: Vec<(usize, TemplateId)> = vec![(recs[i], first.template)];
                let mut class: Option<AntipatternClass> = None;
                let mut prev = first;
                let mut j = i + 1;
                while j < recs.len() {
                    let Some(cur) = shape(ctx, &ctx.records[recs[j]]) else {
                        break;
                    };
                    let Some(rel) = relation(ctx.store, &prev, &cur) else {
                        break;
                    };
                    match &class {
                        None => class = Some(rel),
                        Some(c) if *c != rel => break,
                        Some(_) => {}
                    }
                    run.push((recs[j], cur.template));
                    prev = cur;
                    j += 1;
                }
                match class {
                    Some(c) if run.len() >= 2 => {
                        out.push(finish_run(c, &run));
                        // Restart from the run's last record: a boundary
                        // query can open the next instance of a *different*
                        // class (the paper's Table 2 marks single statements
                        // as members of several antipatterns). Progress is
                        // guaranteed because j ≥ i + 2 here.
                        i = j - 1;
                    }
                    _ => i += 1,
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use crate::mine::build_sessions;
    use crate::parse_step::parse_log;
    use crate::store::TemplateStore;
    use sqlog_catalog::skyserver_catalog;
    use sqlog_log::{LogEntry, LogView, QueryLog, Timestamp};

    fn detect(rows: &[&str]) -> (Vec<AntipatternInstance>, TemplateStore) {
        let log = QueryLog::from_entries(
            rows.iter()
                .enumerate()
                .map(|(i, s)| {
                    LogEntry::minimal(i as u64, *s, Timestamp::from_secs(i as i64)).with_user("u")
                })
                .collect(),
        );
        let store = TemplateStore::new();
        let parsed = parse_log(&log, &store, 1);
        let sessions = build_sessions(&log, &parsed.records, 300_000);
        let catalog = skyserver_catalog();
        let config = PipelineConfig::default();
        let view = LogView::identity(&log);
        let ctx = DetectCtx {
            log: &view,
            records: &parsed.records,
            sessions: &sessions.sessions,
            store: &store,
            catalog: &catalog,
            config: &config,
        };
        (StifleDetector.detect(&ctx), store)
    }

    #[test]
    fn detects_dw_run() {
        let (instances, _) = detect(&[
            "SELECT rowc_g, colc_g FROM photoprimary WHERE objid=1",
            "SELECT rowc_g, colc_g FROM photoprimary WHERE objid=2",
            "SELECT rowc_g, colc_g FROM photoprimary WHERE objid=3",
        ]);
        assert_eq!(instances.len(), 1);
        let inst = &instances[0];
        assert_eq!(inst.class, AntipatternClass::DwStifle);
        assert_eq!(inst.records, vec![0, 1, 2]);
        assert_eq!(inst.identity.len(), 1);
        assert!(inst.solvable);
    }

    #[test]
    fn detects_ds_alternation_as_one_instance() {
        // Paper Example 11 shape: same FROM+WHERE, different SELECT.
        let (instances, _) = detect(&[
            "SELECT name FROM Employee WHERE empId=8",
            "SELECT address, phone FROM Employee WHERE empId=8",
        ]);
        assert_eq!(instances.len(), 1);
        assert_eq!(instances[0].class, AntipatternClass::DsStifle);
        assert_eq!(instances[0].identity.len(), 2);
        // Both rotations are marker keys.
        assert_eq!(instances[0].marker_keys.len(), 2);
    }

    #[test]
    fn detects_df_pair() {
        // Paper Example 13: same WHERE, different tables.
        let (instances, _) = detect(&[
            "SELECT name FROM Employee WHERE empId = 8",
            "SELECT address FROM EmployeeInfo WHERE empId = 8",
        ]);
        assert_eq!(instances.len(), 1);
        assert_eq!(instances[0].class, AntipatternClass::DfStifle);
    }

    #[test]
    fn constant_change_breaks_a_ds_run() {
        let (instances, _) = detect(&[
            "SELECT rowc_r, colc_r FROM photoprimary WHERE objid=1",
            "SELECT rowc_g, colc_g FROM photoprimary WHERE objid=1",
            "SELECT rowc_r, colc_r FROM photoprimary WHERE objid=2",
            "SELECT rowc_g, colc_g FROM photoprimary WHERE objid=2",
        ]);
        // Two DS instances (one per objid) — the boundary pair differs in
        // both SELECT and constant, which matches no class.
        assert_eq!(instances.len(), 2);
        assert!(instances
            .iter()
            .all(|i| i.class == AntipatternClass::DsStifle));
    }

    #[test]
    fn without_the_key_axiom_non_key_filters_become_stifles() {
        // The paper's discussed ablation: dropping Def. 11's third axiom
        // admits false positives like repeated magnitude filters.
        let log = QueryLog::from_entries(
            [
                "SELECT objid FROM photoprimary WHERE r = 14.2",
                "SELECT objid FROM photoprimary WHERE r = 15.1",
            ]
            .iter()
            .enumerate()
            .map(|(i, s)| {
                LogEntry::minimal(i as u64, *s, Timestamp::from_secs(i as i64)).with_user("u")
            })
            .collect(),
        );
        let store = TemplateStore::new();
        let parsed = parse_log(&log, &store, 1);
        let sessions = build_sessions(&log, &parsed.records, 300_000);
        let catalog = skyserver_catalog();
        let config = PipelineConfig {
            require_key_attribute: false,
            ..PipelineConfig::default()
        };
        let view = LogView::identity(&log);
        let ctx = DetectCtx {
            log: &view,
            records: &parsed.records,
            sessions: &sessions.sessions,
            store: &store,
            catalog: &catalog,
            config: &config,
        };
        let instances = StifleDetector.detect(&ctx);
        assert_eq!(instances.len(), 1);
        assert_eq!(instances[0].class, AntipatternClass::DwStifle);
    }

    #[test]
    fn non_key_filter_is_not_a_stifle() {
        // `r` is a magnitude, not a key (Def. 11's third axiom).
        let (instances, _) = detect(&[
            "SELECT objid FROM photoprimary WHERE r = 14.2",
            "SELECT objid FROM photoprimary WHERE r = 15.1",
        ]);
        assert!(instances.is_empty());
    }

    #[test]
    fn multi_predicate_queries_are_not_stifles() {
        let (instances, _) = detect(&[
            "SELECT a FROM photoprimary WHERE objid = 1 AND run = 2",
            "SELECT a FROM photoprimary WHERE objid = 2 AND run = 2",
        ]);
        assert!(instances.is_empty());
    }

    #[test]
    fn range_predicates_are_not_stifles() {
        let (instances, _) = detect(&[
            "SELECT a FROM photoprimary WHERE objid > 1",
            "SELECT a FROM photoprimary WHERE objid > 2",
        ]);
        assert!(instances.is_empty());
    }

    #[test]
    fn identical_repeats_are_not_dw() {
        // Same constant twice = duplicate territory, not DW.
        let (instances, _) = detect(&[
            "SELECT a FROM photoprimary WHERE objid = 1",
            "SELECT a FROM photoprimary WHERE objid = 1",
        ]);
        assert!(instances.is_empty());
    }

    #[test]
    fn class_switch_starts_a_new_instance() {
        // DW DW DW then DS pair on the last constant.
        let (instances, _) = detect(&[
            "SELECT rowc_g, colc_g FROM photoprimary WHERE objid=1",
            "SELECT rowc_g, colc_g FROM photoprimary WHERE objid=2",
            "SELECT rowc_g, colc_g FROM photoprimary WHERE objid=3",
            "SELECT ra, dec FROM photoprimary WHERE objid=3",
        ]);
        assert_eq!(instances.len(), 2);
        assert_eq!(instances[0].class, AntipatternClass::DwStifle);
        assert_eq!(instances[0].records, vec![0, 1, 2]);
        assert_eq!(instances[1].class, AntipatternClass::DsStifle);
        assert_eq!(instances[1].records, vec![2, 3]);
    }

    #[test]
    fn dw_marker_keys_cover_ngram_shapes() {
        let (instances, _) = detect(&[
            "SELECT a FROM photoprimary WHERE objid = 1",
            "SELECT a FROM photoprimary WHERE objid = 2",
        ]);
        let keys = &instances[0].marker_keys;
        assert_eq!(keys.len(), 3);
        assert_eq!(keys[0].len(), 1);
        assert_eq!(keys[1].len(), 2);
        assert_eq!(keys[2].len(), 3);
    }
}
