//! The full cleaning pipeline (Fig. 1 of the paper).
//!
//! ```text
//! Original log ─► delete duplicates ─► parse statements ─► templates
//!              ─► pattern mining ─► antipattern detection ─► solve
//!              ─► clean log + removal log + statistics
//! ```
//!
//! The batch run is a sequence of explicit **stage operators** (`op_sort`,
//! `op_dedup`, `op_parse`, `op_sessions`, `op_mine`, `op_detect`,
//! `op_solve`, `assemble`): [`Pipeline::run`] drives them back to back,
//! while the checkpointed runner ([`crate::checkpoint`]) drives the same
//! operators with a serialization point after each one, so an interrupted
//! run can resume from the last completed stage. Both drivers produce
//! byte-identical output — the operators are the single source of truth
//! for what each stage does.

use crate::config::PipelineConfig;
use crate::dedup::{dedup_view_traced, DedupStats};
use crate::detect::{
    detect_builtin, sort_instances, AntipatternClass, AntipatternInstance, DetectCtx,
};
use crate::ext::ExtensionRegistry;
use crate::fault;
use crate::mine::{build_sessions_view_traced, mine_patterns_traced, MinedPatterns, Sessions};
use crate::parse_step::{parse_view_traced, ParsedLog, ParsedRecord};
use crate::shard::{
    balance_chunks, guarded, resolve_threads, run_shards_traced, whole_range, ShardTrace,
};
use crate::solve::{apply_solutions, SolveOutcome};
use crate::stats::{ClassCounts, RunHealth, StageTimings, Statistics};
use crate::store::{TemplateId, TemplateStore};
use sqlog_catalog::Catalog;
use sqlog_log::{LogView, QueryLog};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::time::Instant;

/// The configured pipeline.
pub struct Pipeline<'a> {
    /// Tunables.
    pub config: PipelineConfig,
    /// Schema catalog for key-attribute checks.
    pub catalog: &'a Catalog,
    /// Extension antipatterns (§5.4).
    pub extensions: ExtensionRegistry<'a>,
}

/// Everything the pipeline produces.
pub struct PipelineResult {
    /// Table-5-style statistics.
    pub stats: Statistics,
    /// The clean log (antipatterns solved).
    pub clean_log: QueryLog,
    /// The removal log (antipattern queries dropped).
    pub removal_log: QueryLog,
    /// Mined patterns.
    pub mined: MinedPatterns,
    /// Pattern keys marked as antipatterns.
    pub marks: HashMap<Vec<TemplateId>, AntipatternClass>,
    /// Detected instances, in order of appearance.
    pub instances: Vec<AntipatternInstance>,
    /// For each instance, the original-log entry ids it covers (usable to
    /// join against workload-generator ground truth).
    pub instance_entry_ids: Vec<Vec<u64>>,
    /// Every applied rewrite as an (original sequence, replacement) pair —
    /// the input of a semantic oracle (see `sqlog-conformance`).
    pub rewrites: Vec<crate::solve::SolvedRewrite>,
    /// The interned templates.
    pub store: TemplateStore,
}

impl PipelineResult {
    /// Per-entry antipattern tags — the paper's Table 2 view, where each
    /// parsed statement is marked with every antipattern it belongs to
    /// (a statement can carry several: Table 2's queries 2–4 are both CTH
    /// and DW-Stifle).
    pub fn entry_tags(&self) -> HashMap<u64, Vec<AntipatternClass>> {
        let mut tags: HashMap<u64, Vec<AntipatternClass>> = HashMap::new();
        for (inst, entry_ids) in self.instances.iter().zip(&self.instance_entry_ids) {
            for &id in entry_ids {
                let t = tags.entry(id).or_default();
                if !t.contains(&inst.class) {
                    t.push(inst.class.clone());
                }
            }
        }
        tags
    }
}

impl<'a> Pipeline<'a> {
    /// A pipeline with default configuration and no extensions.
    pub fn new(catalog: &'a Catalog) -> Self {
        Pipeline {
            config: PipelineConfig::default(),
            catalog,
            extensions: ExtensionRegistry::new(),
        }
    }

    /// Sets the configuration.
    pub fn with_config(mut self, config: PipelineConfig) -> Self {
        self.config = config;
        self
    }

    /// Registers extensions.
    pub fn with_extensions(mut self, extensions: ExtensionRegistry<'a>) -> Self {
        self.extensions = extensions;
        self
    }

    /// Runs the pipeline over a log.
    ///
    /// Every stage up to solving shards its work over
    /// [`PipelineConfig::parallelism`] worker threads — by user (dedup,
    /// sessions), by record chunk (parse), or by session range (mining,
    /// detection) — and merges shard outputs deterministically, so the
    /// result is identical for every thread count.
    pub fn run(&self, original: &QueryLog) -> PipelineResult {
        let t_total = Instant::now();
        let ms = |t: Instant| t.elapsed().as_millis() as u64;
        let rec = &self.config.recorder;
        let mut pipeline_span = rec.span("pipeline");
        pipeline_span.field("threads", resolve_threads(self.config.parallelism) as u64);
        pipeline_span.field("input", original.len() as u64);
        if rec.is_enabled() {
            // Route the fault-injection arming into the event stream too —
            // `fault::armed` already shouts on stderr, but machine consumers
            // of the trace must not need to scrape stderr for it.
            if let Some(desc) = fault::armed_description() {
                rec.warning(desc);
            }
        }

        let t = Instant::now();
        let input = self.op_sort(original);
        let sort_ms = ms(t);
        let t = Instant::now();
        let (pre_clean, dedup_stats) = self.op_dedup(&input);
        let dedup_ms = ms(t);
        let t = Instant::now();
        let store = TemplateStore::with_recorder(rec.clone());
        let parsed = self.op_parse(&pre_clean, &store);
        let parse_ms = ms(t);
        let t = Instant::now();
        let sessions = self.op_sessions(&pre_clean, &parsed.records);
        let sessions_ms = ms(t);
        let t = Instant::now();
        let mined = self.op_mine(&sessions, &parsed.records);
        let mine_ms = ms(t);
        let t = Instant::now();
        let detected = self.op_detect(&pre_clean, &parsed.records, &sessions, &store);
        let detect_ms = ms(t);
        let t = Instant::now();
        let outcome = self.op_solve(&pre_clean, &parsed.records, &sessions, &store, &detected);
        let solve_ms = ms(t);

        let timings = StageTimings {
            // Ingest and report happen outside the pipeline; the binary
            // that drives the run fills these (and extends total_ms).
            ingest_ms: 0,
            sort_ms,
            dedup_ms,
            parse_ms,
            sessions_ms,
            mine_ms,
            detect_ms,
            solve_ms,
            report_ms: 0,
            total_ms: ms(t_total),
        };
        self.assemble(
            original.len(),
            &pre_clean,
            &dedup_stats,
            parsed,
            &sessions,
            mined,
            detected,
            outcome,
            store,
            timings,
        )
    }

    /// Stage operator 0: order by time. A sorted *view* (index permutation)
    /// over the original entries — the log itself is never cloned.
    pub fn op_sort<'l>(&self, original: &'l QueryLog) -> LogView<'l> {
        self.config
            .recorder
            .stage_begin("sort", original.len() as u64);
        let _span = self.config.recorder.span("sort");
        LogView::sorted_by_time(original)
    }

    /// Stage operator 1: delete duplicates (§5.2), sharded by user.
    pub fn op_dedup<'l>(&self, input: &LogView<'l>) -> (LogView<'l>, DedupStats) {
        let rec = &self.config.recorder;
        rec.stage_begin("dedup", input.len() as u64);
        let span = rec.span("dedup");
        dedup_view_traced(
            input,
            self.config.duplicate_threshold_ms,
            resolve_threads(self.config.parallelism),
            self.config.dedup_prefilter,
            rec,
            span.id(),
        )
    }

    /// Stage operator 2: parse statements (§5.3); template ids are
    /// canonicalized to first-appearance order after the parallel phase.
    /// The configured resource guards bound what the parser will attempt
    /// per statement. `store` must be empty (a fresh store per run).
    pub fn op_parse(&self, pre_clean: &LogView<'_>, store: &TemplateStore) -> ParsedLog {
        let rec = &self.config.recorder;
        rec.stage_begin("parse", pre_clean.len() as u64);
        let span = rec.span("parse");
        parse_view_traced(
            pre_clean,
            store,
            &self.config.parse_options(),
            resolve_threads(self.config.parallelism),
            rec,
            span.id(),
        )
    }

    /// Stage operator 3a: per-user sessions (§4.1, Def. 7).
    pub fn op_sessions(&self, pre_clean: &LogView<'_>, records: &[ParsedRecord]) -> Sessions {
        let rec = &self.config.recorder;
        rec.stage_begin("sessions", records.len() as u64);
        let span = rec.span("sessions");
        build_sessions_view_traced(
            pre_clean,
            records,
            self.config.session_gap_ms,
            resolve_threads(self.config.parallelism),
            rec,
            span.id(),
        )
    }

    /// Stage operator 3b: pattern mining (Defs. 8–10).
    pub fn op_mine(&self, sessions: &Sessions, records: &[ParsedRecord]) -> MinedPatterns {
        let rec = &self.config.recorder;
        if rec.is_enabled() {
            // Shards report queries as their work unit; sum the same unit
            // for the stage total (enabled-only: this walk is O(#sessions)).
            let total: u64 = sessions
                .sessions
                .iter()
                .map(|s| s.records.len() as u64)
                .sum();
            rec.stage_begin("mine", total);
        }
        let span = rec.span("mine");
        mine_patterns_traced(
            sessions,
            records,
            &self.config,
            resolve_threads(self.config.parallelism),
            rec,
            span.id(),
        )
    }

    /// Stage operator 4: antipattern detection (Defs. 11–16 + extensions),
    /// sharded by contiguous session ranges. Detectors are session-local
    /// (see [`DetectCtx`]), so shard outputs concatenate cleanly; the final
    /// total-order sort makes the result independent of shard boundaries.
    pub fn op_detect(
        &self,
        pre_clean: &LogView<'_>,
        records: &[ParsedRecord],
        sessions: &Sessions,
        store: &TemplateStore,
    ) -> DetectOutput {
        let threads = resolve_threads(self.config.parallelism);
        let rec = &self.config.recorder;
        if rec.is_enabled() {
            let total: u64 = sessions
                .sessions
                .iter()
                .map(|s| s.records.len() as u64)
                .sum();
            rec.stage_begin("detect", total);
        }
        let detect_span = rec.span("detect");
        let detect_span_id = detect_span.id();
        let detect_shard = |sess: &[crate::mine::Session]| {
            let fault = fault::armed("detect");
            if fault.is_some() {
                for session in sess {
                    for &ri in &session.records {
                        let e = pre_clean.entry(records[ri].entry_idx as usize);
                        fault::trip(&fault, &e.statement);
                    }
                }
            }
            let ctx = DetectCtx {
                log: pre_clean,
                records,
                sessions: sess,
                store,
                catalog: self.catalog,
                config: &self.config,
            };
            let mut out = detect_builtin(&ctx);
            for detector in &self.extensions.detectors {
                out.extend(detector.detect(&ctx));
            }
            out
        };
        let ranges = if threads <= 1 || sessions.sessions.len() < 2 {
            whole_range(sessions.sessions.len())
        } else {
            let weights: Vec<u64> = sessions
                .sessions
                .iter()
                .map(|s| s.records.len() as u64)
                .collect();
            balance_chunks(&weights, threads)
        };
        let (detect_shards, detect_degraded) = run_shards_traced(
            ranges,
            ShardTrace {
                rec,
                parent: detect_span_id,
                span_name: "detect.shard",
                hist_name: "detect.shard_us",
            },
            // Work units = queries in the shard's session range.
            |r| {
                sessions.sessions[r.clone()]
                    .iter()
                    .map(|s| s.records.len() as u64)
                    .sum()
            },
            |r| (detect_shard(&sessions.sessions[r]), 0usize),
            |r| {
                // Degraded re-run: detect each session of the panicked shard
                // on its own; the poison session contributes no instances.
                let mut out = Vec::new();
                let mut poison = 0usize;
                for i in r {
                    match guarded(|| detect_shard(&sessions.sessions[i..i + 1])) {
                        Some(v) => out.extend(v),
                        None => poison += 1,
                    }
                }
                (out, poison)
            },
        );
        let mut instances: Vec<AntipatternInstance> = Vec::new();
        let mut poison_sessions = 0usize;
        for (shard, shard_poison) in detect_shards {
            instances.extend(shard);
            poison_sessions += shard_poison;
        }
        sort_instances(&mut instances);
        DetectOutput {
            instances,
            poison_sessions,
            degraded_shards: detect_degraded,
        }
    }

    /// Stage operator 5: solve (§5.5). Sequential: first-wins overlap
    /// resolution is inherently ordered across the whole instance list.
    pub fn op_solve(
        &self,
        pre_clean: &LogView<'_>,
        records: &[ParsedRecord],
        sessions: &Sessions,
        store: &TemplateStore,
        detected: &DetectOutput,
    ) -> SolveOutcome {
        let ctx = DetectCtx {
            log: pre_clean,
            records,
            sessions: &sessions.sessions,
            store,
            catalog: self.catalog,
            config: &self.config,
        };
        let solvers = self.extensions.solver_set();
        self.config
            .recorder
            .stage_begin("solve", detected.instances.len() as u64);
        let _span = self.config.recorder.span("solve");
        apply_solutions(&ctx, &detected.instances, &solvers)
    }

    /// Final assembly: statistics, pattern marks and entry-id joins from
    /// the completed stage outputs. Pure bookkeeping — no stage work — so
    /// both drivers (batch and checkpointed) share it.
    #[allow(clippy::too_many_arguments)] // one parameter per stage output
    pub fn assemble(
        &self,
        original_size: usize,
        pre_clean: &LogView<'_>,
        dedup_stats: &DedupStats,
        parsed: ParsedLog,
        sessions: &Sessions,
        mined: MinedPatterns,
        detected: DetectOutput,
        outcome: SolveOutcome,
        store: TemplateStore,
        timings: StageTimings,
    ) -> PipelineResult {
        let instances = detected.instances;
        // Pattern marks.
        let mut marks: HashMap<Vec<TemplateId>, AntipatternClass> = HashMap::new();
        for inst in &instances {
            for key in &inst.marker_keys {
                marks
                    .entry(key.clone())
                    .or_insert_with(|| inst.class.clone());
            }
        }

        let mut per_class: BTreeMap<String, ClassCounts> = BTreeMap::new();
        let mut distinct_per_class: HashMap<String, HashSet<Vec<TemplateId>>> = HashMap::new();
        for inst in &instances {
            let label = inst.class.label().to_string();
            let c = per_class.entry(label.clone()).or_default();
            c.instances += 1;
            c.queries += inst.records.len();
            distinct_per_class
                .entry(label)
                .or_default()
                .insert(inst.identity.clone());
        }
        for (label, set) in distinct_per_class {
            per_class.entry(label).or_default().distinct = set.len();
        }

        let stats = Statistics {
            original_size,
            duplicates_removed: dedup_stats.removed,
            after_dedup: pre_clean.len(),
            select_count: parsed.stats.selects,
            syntax_errors: parsed.stats.errors,
            non_select: parsed.stats.non_select_total(),
            final_size: outcome.clean_log.len(),
            removal_size: outcome.removal_log.len(),
            pattern_count: mined
                .patterns
                .values()
                .filter(|d| d.frequency >= self.config.min_pattern_frequency)
                .count(),
            max_pattern_frequency: mined
                .patterns
                .values()
                .map(|d| d.frequency)
                .max()
                .unwrap_or(0),
            per_class,
            solved_instances: outcome.solved_instances,
            solved_queries: outcome.solved_queries,
            rewritten_statements: outcome.rewritten_statements,
            skipped_overlaps: outcome.skipped_overlaps,
            timings,
            parse_cache: parsed.cache,
            run_health: RunHealth {
                // Ingestion counts and the interruption tally are filled by
                // the caller that read the log / drove the checkpointed run.
                quarantined_lines: 0,
                invalid_utf8_lines: 0,
                limit_rejected: parsed.stats.limit_exceeded,
                poison_records: dedup_stats.poison + parsed.stats.poison + sessions.poison,
                poison_sessions: mined.poison_sessions + detected.poison_sessions,
                degraded_shards: dedup_stats.degraded_shards
                    + parsed.stats.degraded_shards
                    + sessions.degraded_shards
                    + mined.degraded_shards
                    + detected.degraded_shards,
                interruptions: 0,
            },
        };

        let instance_entry_ids = instances
            .iter()
            .map(|inst| {
                inst.records
                    .iter()
                    .map(|&ri| pre_clean.entry(parsed.records[ri].entry_idx as usize).id)
                    .collect()
            })
            .collect();

        PipelineResult {
            stats,
            clean_log: outcome.clean_log,
            removal_log: outcome.removal_log,
            mined,
            marks,
            instances,
            instance_entry_ids,
            rewrites: outcome.rewrites,
            store,
        }
    }
}

/// Output of the detection stage operator: the sorted instance list plus
/// the recovery accounting the statistics need.
#[derive(Debug, Clone, Default)]
pub struct DetectOutput {
    /// Detected instances, sorted by order of appearance in the log.
    pub instances: Vec<AntipatternInstance>,
    /// Sessions skipped because detection panicked on them.
    pub poison_sessions: usize,
    /// Detection shards that panicked and were recovered per-session.
    pub degraded_shards: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlog_catalog::skyserver_catalog;
    use sqlog_log::{LogEntry, Timestamp};

    fn log_of(rows: &[(&str, i64, &str)]) -> QueryLog {
        QueryLog::from_entries(
            rows.iter()
                .enumerate()
                .map(|(i, (stmt, secs, user))| {
                    LogEntry::minimal(i as u64, *stmt, Timestamp::from_secs(*secs)).with_user(*user)
                })
                .collect(),
        )
    }

    #[test]
    fn end_to_end_paper_example() {
        // Table 1 shapes: duplicate, DW-run, CTH source, noise.
        let catalog = skyserver_catalog();
        let log = log_of(&[
            (
                "SELECT E.Id FROM Employees E WHERE E.department = 'sales'",
                0,
                "u",
            ),
            (
                "SELECT E.name, E.surname FROM Employees E WHERE E.id = 12",
                2,
                "u",
            ),
            (
                "SELECT E.name, E.surname FROM Employees E WHERE E.id = 12",
                2,
                "u",
            ), // dup
            (
                "SELECT E.name, E.surname FROM Employees E WHERE E.id = 15",
                4,
                "u",
            ),
            (
                "SELECT E.name, E.surname FROM Employees E WHERE E.id = 16",
                6,
                "u",
            ),
            ("INSERT INTO t VALUES (1)", 8, "u"),
            ("SELECT broken FROM", 9, "u"),
        ]);
        let result = Pipeline::new(&catalog).run(&log);
        let s = &result.stats;
        assert_eq!(s.original_size, 7);
        assert_eq!(s.duplicates_removed, 1);
        assert_eq!(s.after_dedup, 6);
        assert_eq!(s.select_count, 4);
        assert_eq!(s.syntax_errors, 1);
        assert_eq!(s.non_select, 1);
        // DW triple solved into one IN-query; source query kept.
        assert_eq!(s.final_size, 2);
        assert_eq!(s.solved_instances, 1);
        assert_eq!(s.solved_queries, 3);
        assert!(s.per_class.contains_key("DW-Stifle"));
        assert!(s.per_class.contains_key("CTH"));
        // Every query is in some instance → removal log is empty.
        assert_eq!(s.removal_size, 0);
        let clean_stmts: Vec<_> = result
            .clean_log
            .entries
            .iter()
            .map(|e| e.statement.as_str())
            .collect();
        assert!(
            clean_stmts[1].contains("IN (12, 15, 16)"),
            "{clean_stmts:?}"
        );
    }

    #[test]
    fn unsorted_input_is_sorted_first() {
        let catalog = skyserver_catalog();
        let mut log = log_of(&[
            ("SELECT name FROM Employee WHERE empId = 1", 10, "u"),
            ("SELECT name FROM Employee WHERE empId = 8", 0, "u"),
        ]);
        log.entries.swap(0, 1);
        log.entries[0].id = 0;
        log.entries[1].id = 1;
        let result = Pipeline::new(&catalog).run(&log);
        assert_eq!(result.stats.per_class["DW-Stifle"].instances, 1);
    }

    #[test]
    fn instance_entry_ids_map_to_original_entries() {
        let catalog = skyserver_catalog();
        let log = log_of(&[
            ("SELECT name FROM Employee WHERE empId = 8", 0, "u"),
            ("SELECT name FROM Employee WHERE empId = 1", 1, "u"),
        ]);
        let result = Pipeline::new(&catalog).run(&log);
        assert_eq!(result.instances.len(), 1);
        assert_eq!(result.instance_entry_ids[0], vec![0, 1]);
    }

    #[test]
    fn marks_contain_dw_unigram() {
        let catalog = skyserver_catalog();
        let log = log_of(&[
            ("SELECT name FROM Employee WHERE empId = 8", 0, "u"),
            ("SELECT name FROM Employee WHERE empId = 1", 1, "u"),
        ]);
        let result = Pipeline::new(&catalog).run(&log);
        let t = result.instances[0].identity[0];
        assert_eq!(
            result.marks.get(&vec![t]),
            Some(&AntipatternClass::DwStifle)
        );
    }

    #[test]
    fn entry_tags_reproduce_table_2() {
        // Table 2: the source is CTH; queries 2–4 are CTH *and* DW-Stifle.
        let catalog = skyserver_catalog();
        let log = log_of(&[
            (
                "SELECT E.Id FROM Employees E WHERE E.department = 'sales'",
                0,
                "u",
            ),
            (
                "SELECT E.name, E.surname FROM Employees E WHERE E.id = 12",
                2,
                "u",
            ),
            (
                "SELECT E.name, E.surname FROM Employees E WHERE E.id = 15",
                4,
                "u",
            ),
            (
                "SELECT E.name, E.surname FROM Employees E WHERE E.id = 16",
                6,
                "u",
            ),
        ]);
        let result = Pipeline::new(&catalog).run(&log);
        let tags = result.entry_tags();
        assert_eq!(tags[&0], vec![AntipatternClass::CthCandidate]);
        for id in 1..=3u64 {
            assert!(tags[&id].contains(&AntipatternClass::CthCandidate), "{id}");
            assert!(tags[&id].contains(&AntipatternClass::DwStifle), "{id}");
        }
    }

    #[test]
    fn empty_log() {
        let catalog = skyserver_catalog();
        let result = Pipeline::new(&catalog).run(&QueryLog::new());
        assert_eq!(result.stats.original_size, 0);
        assert_eq!(result.stats.final_size, 0);
        assert!(result.instances.is_empty());
    }

    #[test]
    fn recleaning_is_a_near_fixpoint() {
        // §5.5: after one cleaning pass, re-running finds (almost) nothing.
        let catalog = skyserver_catalog();
        let log = log_of(&[
            ("SELECT name FROM Employee WHERE empId = 8", 0, "u"),
            ("SELECT name FROM Employee WHERE empId = 1", 1, "u"),
            (
                "SELECT address, phone FROM Employee WHERE empId = 3",
                10,
                "u",
            ),
            ("SELECT name FROM Employee WHERE empId = 3", 11, "u"),
        ]);
        let first = Pipeline::new(&catalog).run(&log);
        assert!(first.stats.solved_instances >= 2);
        let second = Pipeline::new(&catalog).run(&first.clean_log);
        assert_eq!(second.stats.solved_instances, 0);
        assert_eq!(second.stats.final_size, first.stats.final_size);
    }
}
