//! Next-query recommendation — the paper's future-work experiment (§7).
//!
//! > "Clearly, queries suggested by a recommender system must not contain
//! > antipatterns. We would like to study the rate of recommended queries
//! > containing antipatterns if the recommender is trained on the original
//! > log. We then would like to do the same with the cleaned log."
//!
//! This module implements that study: a first-order Markov recommender over
//! template transitions (the simplest member of the QueRIE [6] family), plus
//! the evaluation that measures how often its suggestions are antipattern
//! templates. Trained on the raw log, the recommender eagerly proposes
//! stifle follow-ups; trained on the cleaned log, it cannot — the training
//! data no longer contains them.

use crate::detect::AntipatternClass;
use crate::mine::Sessions;
use crate::parse_step::ParsedRecord;
use crate::store::TemplateId;
use std::collections::HashMap;

/// A first-order Markov next-template recommender.
#[derive(Debug, Default)]
pub struct Recommender {
    /// `current template → (next template → transition count)`.
    transitions: HashMap<TemplateId, HashMap<TemplateId, u64>>,
    /// Occurrences per template (for weighting the evaluation).
    occurrences: HashMap<TemplateId, u64>,
}

impl Recommender {
    /// Trains on the session streams of a parsed log: every adjacent pair of
    /// queries inside a session is a transition.
    pub fn train(sessions: &Sessions, records: &[ParsedRecord]) -> Self {
        let mut r = Recommender::default();
        for session in &sessions.sessions {
            let templates: Vec<TemplateId> = session
                .records
                .iter()
                .map(|&ri| records[ri].template)
                .collect();
            for &t in &templates {
                *r.occurrences.entry(t).or_default() += 1;
            }
            for pair in templates.windows(2) {
                *r.transitions
                    .entry(pair[0])
                    .or_default()
                    .entry(pair[1])
                    .or_default() += 1;
            }
        }
        r
    }

    /// The top-`k` next templates after `current`, most frequent first.
    pub fn recommend(&self, current: TemplateId, k: usize) -> Vec<TemplateId> {
        let Some(nexts) = self.transitions.get(&current) else {
            return Vec::new();
        };
        let mut ranked: Vec<(&TemplateId, &u64)> = nexts.iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
        ranked.into_iter().take(k).map(|(t, _)| *t).collect()
    }

    /// Number of distinct templates with at least one outgoing transition.
    pub fn states(&self) -> usize {
        self.transitions.len()
    }

    /// Total training transitions.
    pub fn transition_count(&self) -> u64 {
        self.transitions.values().flat_map(|m| m.values()).sum()
    }

    /// Iterates over `(template, occurrence count)` of the training data —
    /// the weights an evaluation should use.
    pub fn sources(&self) -> impl Iterator<Item = (TemplateId, u64)> + '_ {
        self.occurrences.iter().map(|(&t, &c)| (t, c))
    }
}

/// Outcome of the future-work evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecommendationEval {
    /// Share of issued recommendations that are antipattern templates,
    /// weighted by how often the source template occurs (i.e. how often the
    /// recommendation would actually be shown).
    pub antipattern_rate: f64,
    /// Recommendations issued (weighted).
    pub recommendations: u64,
    /// Of which antipattern templates (weighted).
    pub antipattern_recommendations: u64,
}

/// Measures how often the recommender's top-`k` suggestions are antipattern
/// templates, weighting each source template by its occurrence count.
///
/// `marks` is the pipeline's pattern-mark map; a suggested template counts
/// as an antipattern when its unigram pattern is marked.
pub fn evaluate_against_marks(
    recommender: &Recommender,
    marks: &HashMap<Vec<TemplateId>, AntipatternClass>,
    k: usize,
) -> RecommendationEval {
    let mut total = 0u64;
    let mut anti = 0u64;
    for (&current, &weight) in &recommender.occurrences {
        for suggestion in recommender.recommend(current, k) {
            total += weight;
            if marks.contains_key(&vec![suggestion]) {
                anti += weight;
            }
        }
    }
    RecommendationEval {
        antipattern_rate: if total == 0 {
            0.0
        } else {
            anti as f64 / total as f64
        },
        recommendations: total,
        antipattern_recommendations: anti,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use crate::mine::build_sessions;
    use crate::parse_step::parse_log;
    use crate::store::TemplateStore;
    use sqlog_log::{LogEntry, QueryLog, Timestamp};

    fn setup(rows: &[&str]) -> (Recommender, Vec<TemplateId>) {
        let log = QueryLog::from_entries(
            rows.iter()
                .enumerate()
                .map(|(i, s)| {
                    LogEntry::minimal(i as u64, *s, Timestamp::from_secs(i as i64)).with_user("u")
                })
                .collect(),
        );
        let store = TemplateStore::new();
        let parsed = parse_log(&log, &store, 1);
        let cfg = PipelineConfig::default();
        let sessions = build_sessions(&log, &parsed.records, cfg.session_gap_ms);
        let templates = parsed.records.iter().map(|r| r.template).collect();
        (Recommender::train(&sessions, &parsed.records), templates)
    }

    #[test]
    fn recommends_the_most_frequent_next() {
        let (r, t) = setup(&[
            "SELECT a FROM t WHERE x = 1",
            "SELECT b FROM t WHERE x = 1",
            "SELECT a FROM t WHERE x = 2",
            "SELECT b FROM t WHERE x = 2",
            "SELECT a FROM t WHERE x = 3",
            "SELECT c FROM t WHERE x = 3",
        ]);
        // a → b twice, a → c once.
        let recs = r.recommend(t[0], 2);
        assert_eq!(recs[0], t[1]);
        assert_eq!(recs[1], t[5]);
        // Two templates have outgoing transitions: a → {b, c}, b → {a}.
        assert_eq!(r.states(), 2);
        assert_eq!(r.transition_count(), 5);
    }

    #[test]
    fn unknown_template_gets_no_recommendation() {
        let (r, _) = setup(&["SELECT a FROM t WHERE x = 1"]);
        assert!(r.recommend(TemplateId(999), 3).is_empty());
        assert_eq!(r.transition_count(), 0);
    }

    #[test]
    fn antipattern_rate_reflects_marks() {
        let (r, t) = setup(&[
            "SELECT a FROM t WHERE x = 1",
            "SELECT b FROM t WHERE x = 1",
            "SELECT a FROM t WHERE x = 2",
            "SELECT b FROM t WHERE x = 2",
        ]);
        let mut marks = HashMap::new();
        // Mark template b as an antipattern.
        marks.insert(vec![t[1]], AntipatternClass::DwStifle);
        let eval = evaluate_against_marks(&r, &marks, 1);
        assert!(eval.antipattern_rate > 0.0);
        assert!(eval.recommendations > 0);

        let clean_eval = evaluate_against_marks(&r, &HashMap::new(), 1);
        assert_eq!(clean_eval.antipattern_rate, 0.0);
    }
}
