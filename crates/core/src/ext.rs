//! Extension points (§5.4 of the paper).
//!
//! "In the presence of a new antipattern, one first comes up with its formal
//! definition … Based on the definition, one provides a detection rule and,
//! if possible, a solving solution." Detection rules implement
//! [`crate::detect::Detector`]; solving solutions implement [`Solver`]; the
//! [`ExtensionRegistry`] carries both into the pipeline.

use crate::detect::{AntipatternClass, AntipatternInstance, DetectCtx, Detector};

/// A solving rule: turns one instance into replacement statements.
///
/// Returning `None` declares the instance unsolvable (it is then kept in the
/// clean log untouched, like CTH candidates).
pub trait Solver: Sync {
    /// Human-readable solver name.
    fn name(&self) -> &str;
    /// Produces the replacement statements for an instance.
    fn solve(&self, inst: &AntipatternInstance, ctx: &DetectCtx<'_>) -> Option<Vec<String>>;
}

/// The set of solvers active in a pipeline run.
pub struct SolverSet<'a> {
    stifle: crate::solve::stifle::StifleSolver,
    snc: crate::solve::snc::SncSolver,
    custom: Vec<(String, &'a dyn Solver)>,
}

impl<'a> SolverSet<'a> {
    /// Only the built-in solvers.
    pub fn builtin() -> Self {
        SolverSet {
            stifle: crate::solve::stifle::StifleSolver::default(),
            snc: crate::solve::snc::SncSolver,
            custom: Vec::new(),
        }
    }

    /// Registers a solver for a custom antipattern class.
    pub fn with_custom(mut self, class_name: impl Into<String>, solver: &'a dyn Solver) -> Self {
        self.custom.push((class_name.into(), solver));
        self
    }

    /// The solver responsible for a class, if any.
    pub fn for_class(&self, class: &AntipatternClass) -> Option<&dyn Solver> {
        match class {
            AntipatternClass::DwStifle
            | AntipatternClass::DsStifle
            | AntipatternClass::DfStifle => Some(&self.stifle),
            AntipatternClass::Snc => Some(&self.snc),
            AntipatternClass::CthCandidate => None,
            AntipatternClass::Custom(name) => {
                self.custom.iter().find(|(n, _)| n == name).map(|(_, s)| *s)
            }
        }
    }
}

/// A bundle of extension detectors and solvers.
#[derive(Default)]
pub struct ExtensionRegistry<'a> {
    /// Extra detectors, run after the built-in ones.
    pub detectors: Vec<&'a dyn Detector>,
    /// Extra solvers, keyed by the custom class name they handle.
    pub solvers: Vec<(String, &'a dyn Solver)>,
}

impl<'a> ExtensionRegistry<'a> {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a detector.
    pub fn with_detector(mut self, detector: &'a dyn Detector) -> Self {
        self.detectors.push(detector);
        self
    }

    /// Adds a solver for a custom class.
    pub fn with_solver(mut self, class_name: impl Into<String>, solver: &'a dyn Solver) -> Self {
        self.solvers.push((class_name.into(), solver));
        self
    }

    /// Builds the full solver set (built-ins + extensions).
    pub fn solver_set(&self) -> SolverSet<'a> {
        let mut set = SolverSet::builtin();
        for (name, solver) in &self.solvers {
            set = set.with_custom(name.clone(), *solver);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct NopSolver;
    impl Solver for NopSolver {
        fn name(&self) -> &str {
            "nop"
        }
        fn solve(&self, _: &AntipatternInstance, _: &DetectCtx<'_>) -> Option<Vec<String>> {
            None
        }
    }

    #[test]
    fn builtin_routing() {
        let set = SolverSet::builtin();
        assert!(set.for_class(&AntipatternClass::DwStifle).is_some());
        assert!(set.for_class(&AntipatternClass::DsStifle).is_some());
        assert!(set.for_class(&AntipatternClass::DfStifle).is_some());
        assert!(set.for_class(&AntipatternClass::Snc).is_some());
        assert!(set.for_class(&AntipatternClass::CthCandidate).is_none());
        assert!(set
            .for_class(&AntipatternClass::Custom("x".into()))
            .is_none());
    }

    #[test]
    fn custom_solver_routing() {
        let nop = NopSolver;
        let set = SolverSet::builtin().with_custom("x", &nop);
        assert_eq!(
            set.for_class(&AntipatternClass::Custom("x".into()))
                .unwrap()
                .name(),
            "nop"
        );
    }

    #[test]
    fn registry_builds_solver_set() {
        let nop = NopSolver;
        let reg = ExtensionRegistry::new().with_solver("x", &nop);
        let set = reg.solver_set();
        assert!(set
            .for_class(&AntipatternClass::Custom("x".into()))
            .is_some());
    }
}
