//! Parallel segmented ingest — the paper-scale input path.
//!
//! The sequential byte-based reader ([`sqlog_log::LogReader`]) was the last
//! single-threaded stage of the pipeline. This driver reads the whole input
//! into memory, splits it into byte segments aligned to line boundaries
//! ([`segment_ranges`]), scans each segment with [`scan_log_slice`] under
//! [`run_shards_traced`], and merges per-segment entries, quarantine bytes
//! and [`IngestStats`] back **in file order** — so the output is
//! byte-identical to the sequential reader at any thread count, under both
//! ingest policies:
//!
//! * **Lenient** merge: entries, quarantined raw lines and the statistics
//!   are each concatenated segment-by-segment; since segments partition the
//!   file into whole physical lines, the concatenation is exactly the
//!   sequential scan.
//! * **Strict** merge: the earliest segment carrying a data fault wins. All
//!   segments before it completed without faults, so the sum of their
//!   physical line counts rebases the fault's segment-local line number to
//!   the file-global number the sequential reader would have reported.
//!
//! Ingest parallelism inherits [`crate::PipelineConfig::parallelism`]; the
//! segment count lands in the `ingest.segments` counter.

use crate::shard::{resolve_threads, run_shards_traced, ShardTrace};
use sqlog_log::{
    scan_log_slice, segment_ranges, IngestPolicy, IngestStats, IoFormatError, QueryLog,
};
use sqlog_obs::{Recorder, SpanId};
use std::io::Write;
use std::path::Path;

/// Rebases a segment-local error line number by the physical line count of
/// every preceding segment.
fn rebase(e: IoFormatError, lines_before: usize) -> IoFormatError {
    match e {
        IoFormatError::Malformed { line, message } => IoFormatError::Malformed {
            line: line + lines_before,
            message,
        },
        IoFormatError::InvalidUtf8 { line } => IoFormatError::InvalidUtf8 {
            line: line + lines_before,
        },
        other => other,
    }
}

/// Scans in-memory log bytes with up to `threads` segments (0 = one per
/// core), merging the per-segment results in file order. Quarantined lines
/// are appended byte-verbatim to `quarantine` in file order. Output —
/// entries, statistics, quarantine bytes, and the error (line number
/// included) a strict scan aborts with — is byte-identical to
/// [`sqlog_log::read_log_with`] over the same bytes for every thread count.
pub fn ingest_slice_traced(
    data: &[u8],
    policy: IngestPolicy,
    threads: usize,
    mut quarantine: Option<&mut dyn Write>,
    rec: &Recorder,
    parent: Option<SpanId>,
) -> Result<(QueryLog, IngestStats), IoFormatError> {
    let threads = resolve_threads(threads);
    let ranges = segment_ranges(data, threads);
    rec.counter("ingest.segments", ranges.len() as u64);
    let want_quarantine = quarantine.is_some();
    let (segments, degraded) = run_shards_traced(
        ranges,
        ShardTrace {
            rec,
            parent,
            span_name: "ingest.shard",
            hist_name: "ingest.shard_us",
        },
        // Work units = bytes of the segment.
        |r| (r.end - r.start) as u64,
        |r| scan_log_slice(&data[r.clone()], policy, want_quarantine),
        |r| scan_log_slice(&data[r.clone()], policy, want_quarantine),
    );
    rec.counter("ingest.degraded_shards", degraded as u64);

    let mut entries = Vec::with_capacity(segments.iter().map(|s| s.entries.len()).sum());
    let mut stats = IngestStats::default();
    let mut lines_before = 0usize;
    for seg in segments {
        if let Some(e) = seg.error {
            // Strict scans stop at the first fault; every earlier segment is
            // fault-free (it carries no error), so `lines_before` is exact.
            return Err(rebase(e, lines_before));
        }
        stats.lines += seg.stats.lines;
        stats.entries += seg.stats.entries;
        stats.quarantined += seg.stats.quarantined;
        stats.malformed += seg.stats.malformed;
        stats.invalid_utf8 += seg.stats.invalid_utf8;
        entries.extend(seg.entries);
        if let Some(w) = quarantine.as_deref_mut() {
            w.write_all(&seg.quarantine)?;
        }
        lines_before += seg.physical_lines;
    }
    Ok((QueryLog::from_entries(entries), stats))
}

/// [`ingest_slice_traced`] over a file path: the file is read whole and
/// scanned segmented. The buffer is freed before the pipeline runs, so peak
/// memory overlaps the entry vector only briefly.
pub fn ingest_file_traced(
    path: &Path,
    policy: IngestPolicy,
    threads: usize,
    quarantine: Option<&mut dyn Write>,
    rec: &Recorder,
    parent: Option<SpanId>,
) -> Result<(QueryLog, IngestStats), IoFormatError> {
    let data = std::fs::read(path)?;
    ingest_slice_traced(&data, policy, threads, quarantine, rec, parent)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hostile_corpus() -> Vec<u8> {
        let mut data = Vec::new();
        for i in 0..200u64 {
            match i % 7 {
                3 => data.extend_from_slice(b"garbage without tabs\n"),
                5 => data.extend_from_slice(b"\n"),
                6 => data.extend_from_slice(
                    format!("{i}\t{}\té\t\t\t\tSELECT {i}\r\n", i * 13).as_bytes(),
                ),
                _ => data.extend_from_slice(
                    format!(
                        "{i}\t{}\tu{}\t\t\t\tSELECT a FROM t WHERE x = {i}\n",
                        i * 13,
                        i % 5
                    )
                    .as_bytes(),
                ),
            }
            if i == 77 {
                data.extend_from_slice(b"1\t5\t\xFFbad\t\t\t\tSELECT 2\n");
            }
        }
        data.extend_from_slice(b"999\t99999\t\t\t\t\tlast line no newline");
        data
    }

    #[test]
    fn segmented_lenient_matches_sequential_for_every_thread_count() {
        let data = hostile_corpus();
        let mut seq_q = Vec::new();
        let (seq_log, seq_stats) =
            sqlog_log::read_log_with(&data[..], IngestPolicy::Lenient, Some(&mut seq_q)).unwrap();
        for threads in [1usize, 2, 3, 8, 64] {
            let mut q = Vec::new();
            let (log, stats) = ingest_slice_traced(
                &data,
                IngestPolicy::Lenient,
                threads,
                Some(&mut q),
                &Recorder::disabled(),
                None,
            )
            .unwrap();
            assert_eq!(log, seq_log, "threads {threads}");
            assert_eq!(stats, seq_stats, "threads {threads}");
            assert_eq!(q, seq_q, "threads {threads}");
        }
    }

    #[test]
    fn segmented_strict_reports_the_sequential_error_line() {
        let data = hostile_corpus();
        let seq_err = sqlog_log::read_log_with(&data[..], IngestPolicy::Strict, None).unwrap_err();
        for threads in [1usize, 2, 8, 64] {
            let err = ingest_slice_traced(
                &data,
                IngestPolicy::Strict,
                threads,
                None,
                &Recorder::disabled(),
                None,
            )
            .unwrap_err();
            assert_eq!(err.to_string(), seq_err.to_string(), "threads {threads}");
        }
    }

    #[test]
    fn segment_counter_is_recorded() {
        let data = hostile_corpus();
        let rec = Recorder::new();
        ingest_slice_traced(&data, IngestPolicy::Lenient, 4, None, &rec, None).unwrap();
        assert!(rec.counters().get("ingest.segments").copied() >= Some(1));
    }
}
