//! The machine-readable run report behind `sqlog-clean --stats-json`:
//! [`Statistics`] (with [`RunHealth`] and [`StageTimings`]) plus the
//! aggregated observability section ([`ObsReport`]), serialized through
//! the exact-integer JSON model of `sqlog-obs` (the vendored serde is a
//! no-op stand-in, so serialization is explicit here).
//!
//! The format is versioned (`schema`) and round-trips: `from_json ∘
//! to_json` is the identity, which the tests pin down field by field.

use crate::parse_step::ParseCacheStats;
use crate::stats::{ClassCounts, RunHealth, StageTimings, Statistics};
use sqlog_obs::{Json, ObsReport};

/// Schema version written into every report.
pub const RUN_REPORT_SCHEMA: u64 = 1;

/// Everything a run reports: the paper-facing statistics plus the
/// observability aggregate.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunReport {
    /// Table-5-style statistics, run health and stage timings.
    pub stats: Statistics,
    /// Per-stage/per-shard timings, counters, histograms, warnings.
    pub obs: ObsReport,
}

fn u(v: usize) -> Json {
    Json::U64(v as u64)
}

fn get_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("run report: missing or non-integer {key:?}"))
}

fn get_usize(v: &Json, key: &str) -> Result<usize, String> {
    v.get(key)
        .and_then(Json::as_usize)
        .ok_or_else(|| format!("run report: missing or non-integer {key:?}"))
}

fn timings_to_json(t: &StageTimings) -> Json {
    Json::obj(vec![
        ("ingest_ms", Json::U64(t.ingest_ms)),
        ("sort_ms", Json::U64(t.sort_ms)),
        ("dedup_ms", Json::U64(t.dedup_ms)),
        ("parse_ms", Json::U64(t.parse_ms)),
        ("sessions_ms", Json::U64(t.sessions_ms)),
        ("mine_ms", Json::U64(t.mine_ms)),
        ("detect_ms", Json::U64(t.detect_ms)),
        ("solve_ms", Json::U64(t.solve_ms)),
        ("report_ms", Json::U64(t.report_ms)),
        ("total_ms", Json::U64(t.total_ms)),
    ])
}

fn timings_from_json(v: &Json) -> Result<StageTimings, String> {
    Ok(StageTimings {
        ingest_ms: get_u64(v, "ingest_ms")?,
        sort_ms: get_u64(v, "sort_ms")?,
        dedup_ms: get_u64(v, "dedup_ms")?,
        parse_ms: get_u64(v, "parse_ms")?,
        sessions_ms: get_u64(v, "sessions_ms")?,
        mine_ms: get_u64(v, "mine_ms")?,
        detect_ms: get_u64(v, "detect_ms")?,
        solve_ms: get_u64(v, "solve_ms")?,
        report_ms: get_u64(v, "report_ms")?,
        total_ms: get_u64(v, "total_ms")?,
    })
}

fn cache_to_json(c: &ParseCacheStats) -> Json {
    Json::obj(vec![
        ("enabled", Json::Bool(c.enabled)),
        ("hits", Json::U64(c.hits)),
        ("misses", Json::U64(c.misses)),
        ("fallbacks", Json::U64(c.fallbacks)),
        ("crosschecks", Json::U64(c.crosschecks)),
    ])
}

fn cache_from_json(v: &Json) -> Result<ParseCacheStats, String> {
    Ok(ParseCacheStats {
        enabled: v
            .get("enabled")
            .and_then(Json::as_bool)
            .ok_or("run report: missing or non-boolean \"enabled\"")?,
        hits: get_u64(v, "hits")?,
        misses: get_u64(v, "misses")?,
        fallbacks: get_u64(v, "fallbacks")?,
        crosschecks: get_u64(v, "crosschecks")?,
    })
}

fn health_to_json(h: &RunHealth) -> Json {
    Json::obj(vec![
        ("quarantined_lines", u(h.quarantined_lines)),
        ("invalid_utf8_lines", u(h.invalid_utf8_lines)),
        ("limit_rejected", u(h.limit_rejected)),
        ("poison_records", u(h.poison_records)),
        ("poison_sessions", u(h.poison_sessions)),
        ("degraded_shards", u(h.degraded_shards)),
        ("interruptions", u(h.interruptions)),
    ])
}

fn health_from_json(v: &Json) -> Result<RunHealth, String> {
    Ok(RunHealth {
        quarantined_lines: get_usize(v, "quarantined_lines")?,
        invalid_utf8_lines: get_usize(v, "invalid_utf8_lines")?,
        limit_rejected: get_usize(v, "limit_rejected")?,
        poison_records: get_usize(v, "poison_records")?,
        poison_sessions: get_usize(v, "poison_sessions")?,
        degraded_shards: get_usize(v, "degraded_shards")?,
        // Absent in reports written before checkpointed runs existed.
        interruptions: v.get("interruptions").and_then(Json::as_usize).unwrap_or(0),
    })
}

/// The statistics as a JSON object (helper shared with tests and tooling).
pub fn statistics_to_json(s: &Statistics) -> Json {
    let per_class = Json::Obj(
        s.per_class
            .iter()
            .map(|(label, c)| {
                (
                    label.clone(),
                    Json::obj(vec![
                        ("distinct", u(c.distinct)),
                        ("instances", u(c.instances)),
                        ("queries", u(c.queries)),
                    ]),
                )
            })
            .collect(),
    );
    Json::obj(vec![
        ("original_size", u(s.original_size)),
        ("duplicates_removed", u(s.duplicates_removed)),
        ("after_dedup", u(s.after_dedup)),
        ("select_count", u(s.select_count)),
        ("syntax_errors", u(s.syntax_errors)),
        ("non_select", u(s.non_select)),
        ("final_size", u(s.final_size)),
        ("removal_size", u(s.removal_size)),
        ("pattern_count", u(s.pattern_count)),
        ("max_pattern_frequency", Json::U64(s.max_pattern_frequency)),
        ("per_class", per_class),
        ("solved_instances", u(s.solved_instances)),
        ("solved_queries", u(s.solved_queries)),
        ("rewritten_statements", u(s.rewritten_statements)),
        ("skipped_overlaps", u(s.skipped_overlaps)),
        ("timings", timings_to_json(&s.timings)),
        ("parse_cache", cache_to_json(&s.parse_cache)),
        ("run_health", health_to_json(&s.run_health)),
    ])
}

/// Rebuilds statistics from their [`statistics_to_json`] form.
pub fn statistics_from_json(v: &Json) -> Result<Statistics, String> {
    let mut s = Statistics {
        original_size: get_usize(v, "original_size")?,
        duplicates_removed: get_usize(v, "duplicates_removed")?,
        after_dedup: get_usize(v, "after_dedup")?,
        select_count: get_usize(v, "select_count")?,
        syntax_errors: get_usize(v, "syntax_errors")?,
        non_select: get_usize(v, "non_select")?,
        final_size: get_usize(v, "final_size")?,
        removal_size: get_usize(v, "removal_size")?,
        pattern_count: get_usize(v, "pattern_count")?,
        max_pattern_frequency: get_u64(v, "max_pattern_frequency")?,
        solved_instances: get_usize(v, "solved_instances")?,
        solved_queries: get_usize(v, "solved_queries")?,
        rewritten_statements: get_usize(v, "rewritten_statements")?,
        skipped_overlaps: get_usize(v, "skipped_overlaps")?,
        timings: timings_from_json(v.get("timings").ok_or("run report: missing \"timings\"")?)?,
        parse_cache: cache_from_json(
            v.get("parse_cache")
                .ok_or("run report: missing \"parse_cache\"")?,
        )?,
        run_health: health_from_json(
            v.get("run_health")
                .ok_or("run report: missing \"run_health\"")?,
        )?,
        ..Statistics::default()
    };
    for (label, cv) in v
        .get("per_class")
        .and_then(Json::as_obj)
        .ok_or("run report: missing \"per_class\"")?
    {
        s.per_class.insert(
            label.clone(),
            ClassCounts {
                distinct: get_usize(cv, "distinct")?,
                instances: get_usize(cv, "instances")?,
                queries: get_usize(cv, "queries")?,
            },
        );
    }
    Ok(s)
}

impl RunReport {
    /// The report as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::U64(RUN_REPORT_SCHEMA)),
            ("stats", statistics_to_json(&self.stats)),
            ("obs", self.obs.to_json()),
        ])
    }

    /// The report as pretty-free single-line JSON text.
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Rebuilds a report from its [`RunReport::to_json`] form. Rejects
    /// unknown schema versions.
    pub fn from_json(v: &Json) -> Result<RunReport, String> {
        let schema = get_u64(v, "schema")?;
        if schema != RUN_REPORT_SCHEMA {
            return Err(format!(
                "run report: unsupported schema {schema} (expected {RUN_REPORT_SCHEMA})"
            ));
        }
        Ok(RunReport {
            stats: statistics_from_json(v.get("stats").ok_or("run report: missing \"stats\"")?)?,
            obs: ObsReport::from_json(v.get("obs").ok_or("run report: missing \"obs\"")?)?,
        })
    }

    /// Parses report text (the `--stats-json` file contents).
    pub fn parse(text: &str) -> Result<RunReport, String> {
        let v = Json::parse(text).map_err(|e| format!("run report: {e}"))?;
        RunReport::from_json(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlog_obs::Recorder;
    use std::collections::BTreeMap;

    fn sample_stats() -> Statistics {
        let mut per_class = BTreeMap::new();
        per_class.insert(
            "DW-Stifle".to_string(),
            ClassCounts {
                distinct: 2,
                instances: 5,
                queries: 17,
            },
        );
        per_class.insert(
            "CTH".to_string(),
            ClassCounts {
                distinct: 1,
                instances: 1,
                queries: 4,
            },
        );
        Statistics {
            original_size: 1_000,
            duplicates_removed: 50,
            after_dedup: 950,
            select_count: 800,
            syntax_errors: 100,
            non_select: 50,
            final_size: 760,
            removal_size: 700,
            pattern_count: 12,
            max_pattern_frequency: 99,
            per_class,
            solved_instances: 5,
            solved_queries: 17,
            rewritten_statements: 5,
            skipped_overlaps: 1,
            timings: StageTimings {
                ingest_ms: 3,
                sort_ms: 1,
                dedup_ms: 2,
                parse_ms: 10,
                sessions_ms: 1,
                mine_ms: 4,
                detect_ms: 6,
                solve_ms: 2,
                report_ms: 1,
                total_ms: 30,
            },
            parse_cache: ParseCacheStats {
                enabled: true,
                hits: 700,
                misses: 90,
                fallbacks: 10,
                crosschecks: 64,
            },
            run_health: RunHealth {
                quarantined_lines: 7,
                invalid_utf8_lines: 2,
                limit_rejected: 1,
                poison_records: 0,
                poison_sessions: 0,
                degraded_shards: 0,
                interruptions: 1,
            },
        }
    }

    #[test]
    fn round_trips_statistics_run_health_and_obs() {
        let rec = Recorder::new();
        {
            let stage = rec.span("parse");
            let id = stage.id();
            let mut g = rec.span_in(id, "parse.shard");
            g.field("shard", 0u64);
            g.field("items", 950u64);
        }
        rec.counter("parse.selects", 800);
        rec.histogram("parse.shard_us", 12_345);
        rec.warning("something");
        let report = RunReport {
            stats: sample_stats(),
            obs: ObsReport::from_recorder(&rec),
        };
        let text = report.render();
        let parsed = RunReport::parse(&text).unwrap();
        assert_eq!(parsed, report);
        // Field-level spot checks through the generic JSON view.
        let v = Json::parse(&text).unwrap();
        assert_eq!(
            v.get("stats")
                .and_then(|s| s.get("original_size"))
                .and_then(Json::as_u64),
            Some(1_000)
        );
        assert_eq!(
            v.get("stats")
                .and_then(|s| s.get("timings"))
                .and_then(|t| t.get("ingest_ms"))
                .and_then(Json::as_u64),
            Some(3)
        );
        assert_eq!(
            v.get("stats")
                .and_then(|s| s.get("run_health"))
                .and_then(|h| h.get("quarantined_lines"))
                .and_then(Json::as_u64),
            Some(7)
        );
    }

    #[test]
    fn default_report_round_trips() {
        let report = RunReport::default();
        assert_eq!(RunReport::parse(&report.render()).unwrap(), report);
    }

    #[test]
    fn unknown_schema_is_rejected() {
        let mut v = RunReport::default().to_json();
        if let Json::Obj(pairs) = &mut v {
            pairs[0].1 = Json::U64(999);
        }
        let err = RunReport::from_json(&v).unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }

    #[test]
    fn stage_sum_reconciles_with_total() {
        let t = sample_stats().timings;
        assert_eq!(t.stage_sum_ms(), 30);
        assert!(t.total_ms >= t.stage_sum_ms().saturating_sub(9));
    }
}
