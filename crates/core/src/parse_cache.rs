//! Template-aware parse cache: skip re-parsing repeated query shapes.
//!
//! Real query logs are dominated by a small set of query *shapes* — the
//! SkyServer log's millions of rows come from a few thousand web-form
//! templates that differ only in literals. The parse stage therefore spends
//! most of its time re-deriving facts it has already derived: the template,
//! the output columns, the primary table, and the literal-independent parts
//! of the predicate profile are identical for every statement of a shape.
//!
//! Each parse worker owns a [`ShapeCache`] mapping a statement's
//! [`RawKey`] — an allocation-free, literal-normalized hash of its raw
//! bytes (see [`sqlog_skeleton::rawkey`]) — to the parse outcome of the
//! first statement seen with that key. On a hit, the cached facts are
//! reused and only the literal-*dependent* slots of the predicate profile
//! are re-extracted by slicing the recorded literal spans out of the new
//! statement's text — no lexing, no parsing, no skeleton rendering.
//!
//! # Soundness
//!
//! Equal raw keys guarantee equal token streams *modulo literal text*, so
//! the template, output columns and primary table carry over directly.
//! Which profile slots are literal-dependent is discovered by a one-time
//! **sentinel probe** per shape: the first statement's literals are
//! replaced by unique sentinel values, the probe is fully parsed, and the
//! slots where the sentinels surface become the substitution recipe. The
//! probe must reproduce the cached template fingerprint, output columns,
//! primary table and conjunct shapes exactly — any deviation (e.g. a
//! literal that leaks into the skeleton, like a `CAST(x AS varchar(12))`
//! type size) marks the shape [`CacheEntry::Uncacheable`] and every
//! statement of that shape falls back to a full parse. As a final guard
//! the recipe is replayed against the first statement itself and must
//! reproduce its own profile byte-for-byte.
//!
//! Statements the scanner cannot key (unterminated constructs), oversized
//! statements, and uncacheable shapes all take the fallback path, so the
//! cache can only ever *skip* work, never change an outcome. Debug builds
//! additionally cross-check the first few hits per worker against a full
//! parse (see [`ShapeCache`]'s `crosscheck` budget).

use crate::parse_step::{parse_one, Outcome, ParsedRecord};
use crate::store::{TemplateId, TemplateStore};
use sqlog_skeleton::{
    primary_table, raw_shape_scan, Fingerprint, FnvHashMap, OutputColumns, PredicateKind,
    PredicateProfile, QueryTemplate, RawKey, RawLiteral, RawLiteralKind, ValueKind,
};
use sqlog_sql::{parse_statements_with, ParseLimits, Statement, StatementKind};

/// One literal-dependent slot of a cached predicate profile: on a hit,
/// conjunct `conjunct` / slot `slot` is overwritten with the text of the
/// new statement's `lit`-th scanned literal.
#[derive(Debug, Clone, Copy)]
struct Subst {
    /// Index into `PredicateProfile::conjuncts`.
    conjunct: u32,
    /// Slot within the conjunct: comparison value / LIKE pattern = 0,
    /// BETWEEN low = 0 and high = 1, IN-list element = its index.
    slot: u32,
    /// Index into the statement's scanned literals (statement order).
    lit: u32,
    /// The profile folds a leading unary minus into the number text
    /// (`- 5` → `Number("-5")`); the scan records only the digits.
    negate: bool,
    /// String slot (needs `''` unescaping) vs number slot.
    is_string: bool,
}

/// Cached facts for the SELECT shape behind one raw key.
#[derive(Debug, Clone)]
struct SelectEntry {
    template: TemplateId,
    fingerprint: Fingerprint,
    output: OutputColumns,
    primary_table: Option<String>,
    profile: PredicateProfile,
    /// Entry index of the first statement seen with this key, used to
    /// build the sentinel probe lazily on the first hit.
    first_idx: u32,
    /// Substitution recipe; `None` until the first hit builds it.
    substs: Option<Vec<Subst>>,
}

/// What the cache knows about one raw shape key.
#[derive(Debug, Clone)]
enum CacheEntry {
    /// The shape's first statement was a non-SELECT; the leading keyword is
    /// shape-determined, so every statement of the shape shares the kind.
    NonSelect(StatementKind),
    /// The shape fails to parse. Grammar and resource-limit errors are both
    /// shape-determined (literal text never changes token *kinds* or
    /// counts; oversized statements bypass the cache before lookup).
    Error {
        /// Rejected by a resource guard rather than a grammar error.
        limit: bool,
    },
    /// The sentinel probe could not certify a substitution recipe — fall
    /// back to a full parse for every statement of this shape.
    Uncacheable,
    /// A cacheable SELECT shape.
    Select(Box<SelectEntry>),
}

/// Per-worker shape cache plus its effectiveness tally.
///
/// Workers own their cache (like the fingerprint→id memo) so the hot path
/// takes no locks; the per-shard tallies are summed after the join.
#[derive(Debug, Default)]
pub(crate) struct ShapeCache {
    map: FnvHashMap<RawKey, CacheEntry>,
    /// Scratch literal-span buffer, reused across statements.
    scratch: Vec<RawLiteral>,
    /// Statements served from the cache.
    pub hits: u64,
    /// Statements that populated a new entry (full parse).
    pub misses: u64,
    /// Statements that bypassed the cache: unkeyable, oversized, or an
    /// uncacheable shape (full parse).
    pub fallbacks: u64,
    /// Cache hits that were cross-checked against a full parse.
    pub crosschecks: u64,
}

impl ShapeCache {
    /// Approximate bytes held by this worker's cache: the hash-map index
    /// at capacity, the boxed SELECT entries with their heap-owned parts,
    /// and the literal scratch buffer. Memory accounting only — not an
    /// allocator-exact figure.
    pub(crate) fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        let mut bytes = self.map.capacity() * (size_of::<RawKey>() + size_of::<CacheEntry>());
        for e in self.map.values() {
            if let CacheEntry::Select(s) = e {
                bytes += size_of::<SelectEntry>();
                bytes += s.primary_table.as_deref().map_or(0, str::len);
                bytes += s.profile.conjuncts.capacity() * size_of::<PredicateKind>();
                bytes += s
                    .substs
                    .as_ref()
                    .map_or(0, |v| v.capacity() * size_of::<Subst>());
            }
        }
        bytes + self.scratch.capacity() * size_of::<RawLiteral>()
    }

    /// Parses one statement through the cache. `statement_of` resolves an
    /// entry index back to its text (for the lazy sentinel probe);
    /// `crosscheck` is the per-worker budget of debug-build hit
    /// verifications.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn parse_one_cached<'v>(
        &mut self,
        store: &TemplateStore,
        memo: &mut FnvHashMap<Fingerprint, TemplateId>,
        limits: &ParseLimits,
        crosscheck: usize,
        entry_idx: u32,
        sql: &str,
        statement_of: &dyn Fn(u32) -> &'v str,
    ) -> Outcome {
        // Oversized statements must be rejected by the real parser so the
        // limit counters agree with the uncached path.
        if sql.len() > limits.max_statement_bytes {
            self.fallbacks += 1;
            return parse_one(store, memo, limits, entry_idx, sql);
        }
        self.scratch.clear();
        let mut lits = std::mem::take(&mut self.scratch);
        let Some(key) = raw_shape_scan(sql, &mut lits) else {
            self.scratch = lits;
            self.fallbacks += 1;
            return parse_one(store, memo, limits, entry_idx, sql);
        };

        let outcome = match self.map.get_mut(&key) {
            None => {
                self.misses += 1;
                let outcome = parse_one(store, memo, limits, entry_idx, sql);
                let entry = match &outcome {
                    Outcome::Select(rec) => CacheEntry::Select(Box::new(SelectEntry {
                        template: rec.template,
                        fingerprint: store.with(rec.template, |t| t.fingerprint),
                        output: rec.output.clone(),
                        primary_table: rec.primary_table.clone(),
                        profile: rec.profile.clone(),
                        first_idx: entry_idx,
                        substs: None,
                    })),
                    Outcome::NonSelect(kind) => CacheEntry::NonSelect(*kind),
                    Outcome::Error { limit } => CacheEntry::Error { limit: *limit },
                    Outcome::Poison => CacheEntry::Uncacheable,
                };
                self.map.insert(key, entry);
                outcome
            }
            Some(CacheEntry::NonSelect(kind)) => {
                self.hits += 1;
                Outcome::NonSelect(*kind)
            }
            Some(CacheEntry::Error { limit }) => {
                self.hits += 1;
                Outcome::Error { limit: *limit }
            }
            Some(CacheEntry::Uncacheable) => {
                self.fallbacks += 1;
                parse_one(store, memo, limits, entry_idx, sql)
            }
            Some(CacheEntry::Select(entry)) => {
                // Build the recipe lazily on the first hit; a failed build
                // leaves `substs` as `None` and demotes the shape below.
                if entry.substs.is_none() {
                    entry.substs = build_recipe(entry, limits, statement_of(entry.first_idx));
                }
                let rebuilt = entry
                    .substs
                    .as_deref()
                    .and_then(|substs| rebuild_profile(&entry.profile, substs, sql, &lits))
                    .map(|profile| ParsedRecord {
                        entry_idx,
                        template: entry.template,
                        profile,
                        output: entry.output.clone(),
                        primary_table: entry.primary_table.clone(),
                    });
                match rebuilt {
                    Some(rec) => {
                        self.hits += 1;
                        #[cfg(debug_assertions)]
                        if (self.crosschecks as usize) < crosscheck {
                            self.crosschecks += 1;
                            match parse_one(store, memo, limits, entry_idx, sql) {
                                Outcome::Select(fresh) => assert_eq!(
                                    *fresh, rec,
                                    "parse-cache cross-check mismatch at entry {entry_idx}",
                                ),
                                _ => panic!(
                                    "parse-cache cross-check: cached SELECT but full parse \
                                     produced a different outcome at entry {entry_idx}"
                                ),
                            }
                        }
                        #[cfg(not(debug_assertions))]
                        let _ = crosscheck;
                        Outcome::Select(Box::new(rec))
                    }
                    None => {
                        // Recipe build or span decode failed — demote the
                        // shape rather than trust it.
                        self.map.insert(key, CacheEntry::Uncacheable);
                        self.fallbacks += 1;
                        parse_one(store, memo, limits, entry_idx, sql)
                    }
                }
            }
        };
        self.scratch = lits;
        outcome
    }
}

/// Sentinel number for literal `k`: 12 decimal digits, distinct per slot.
fn sent_num(k: usize) -> String {
    format!("987{k:09}")
}

/// Sentinel string-literal body for literal `k`: no quotes, so it needs no
/// escaping inside the probe text.
fn sent_str(k: usize) -> String {
    format!("sqlog.sentinel.{k}")
}

/// Builds the substitution recipe for a cached SELECT shape, or `None`
/// when the shape cannot be certified (then it becomes uncacheable).
fn build_recipe(entry: &SelectEntry, limits: &ParseLimits, first_sql: &str) -> Option<Vec<Subst>> {
    let mut a_lits = Vec::new();
    raw_shape_scan(first_sql, &mut a_lits)?;

    // Splice a unique sentinel into each literal span. If a literal's own
    // text *equals* its sentinel the probe could not tell the slot apart
    // from a constant — give up (vanishingly rare by construction).
    let mut probe = String::with_capacity(first_sql.len() + a_lits.len() * 20);
    let mut sentinels = Vec::with_capacity(a_lits.len());
    let mut pos = 0usize;
    for (k, lit) in a_lits.iter().enumerate() {
        let s = match lit.kind {
            RawLiteralKind::Number => sent_num(k),
            RawLiteralKind::String { .. } => sent_str(k),
        };
        if lit.text(first_sql)? == s {
            return None;
        }
        probe.push_str(first_sql.get(pos..lit.start as usize)?);
        probe.push_str(&s);
        sentinels.push((s, lit.kind));
        pos = lit.end as usize;
    }
    probe.push_str(first_sql.get(pos..)?);

    // The sentinels may make the probe longer than the original; size the
    // byte guard to the probe so the probe itself is never rejected.
    let probe_limits = ParseLimits {
        max_statement_bytes: limits.max_statement_bytes.max(probe.len()),
        ..*limits
    };
    let stmts = parse_statements_with(&probe, &probe_limits).ok()?;
    let q = stmts.iter().find_map(|s| match s {
        Statement::Select(q) => Some(q),
        _ => None,
    })?;

    // The probe must be shape-identical to the cached statement; a literal
    // that leaks into any of these facts makes the shape uncacheable.
    if QueryTemplate::of_query(q).fingerprint != entry.fingerprint
        || OutputColumns::of_select(&q.body) != entry.output
        || primary_table(&q.body) != entry.primary_table
    {
        return None;
    }
    let probe_profile = PredicateProfile::of_select(&q.body);
    if probe_profile.conjuncts.len() != entry.profile.conjuncts.len() {
        return None;
    }
    let mut substs = Vec::new();
    for (ci, (a, p)) in entry
        .profile
        .conjuncts
        .iter()
        .zip(&probe_profile.conjuncts)
        .enumerate()
    {
        zip_conjunct(ci as u32, a, p, &sentinels, &mut substs)?;
    }

    // Replaying the recipe over the first statement itself must reproduce
    // its own profile exactly — this catches any span misalignment before
    // the recipe is ever applied to another statement.
    if rebuild_profile(&entry.profile, &substs, first_sql, &a_lits)? != entry.profile {
        return None;
    }
    Some(substs)
}

/// Aligns one cached conjunct against its probe counterpart: the shapes
/// must match exactly, and every slot where a sentinel surfaced becomes a
/// substitution.
fn zip_conjunct(
    ci: u32,
    a: &PredicateKind,
    p: &PredicateKind,
    sentinels: &[(String, RawLiteralKind)],
    out: &mut Vec<Subst>,
) -> Option<()> {
    use PredicateKind as P;
    match (a, p) {
        (
            P::Comparison {
                column: ca,
                theta: ta,
                value: va,
            },
            P::Comparison {
                column: cp,
                theta: tp,
                value: vp,
            },
        ) if ca == cp && ta == tp => zip_value(ci, 0, va, vp, sentinels, out),
        (
            P::Between {
                column: ca,
                low: la,
                high: ha,
                negated: na,
            },
            P::Between {
                column: cp,
                low: lp,
                high: hp,
                negated: np,
            },
        ) if ca == cp && na == np => {
            zip_value(ci, 0, la, lp, sentinels, out)?;
            zip_value(ci, 1, ha, hp, sentinels, out)
        }
        (
            P::InList {
                column: ca,
                values: va,
                negated: na,
            },
            P::InList {
                column: cp,
                values: vp,
                negated: np,
            },
        ) if ca == cp && na == np && va.len() == vp.len() => {
            for (i, (x, y)) in va.iter().zip(vp).enumerate() {
                zip_value(ci, i as u32, x, y, sentinels, out)?;
            }
            Some(())
        }
        (
            P::IsNull {
                column: ca,
                negated: na,
            },
            P::IsNull {
                column: cp,
                negated: np,
            },
        ) if ca == cp && na == np => Some(()),
        (
            P::Like {
                column: ca,
                pattern: pa,
                negated: na,
            },
            P::Like {
                column: cp,
                pattern: pp,
                negated: np,
            },
        ) if ca == cp && na == np => zip_value(ci, 0, pa, pp, sentinels, out),
        (P::Other, P::Other) => Some(()),
        _ => None,
    }
}

/// Aligns one value slot. A sentinel in the probe means the slot is
/// literal-dependent (and the cached side must hold the matching literal
/// kind); anything else must be byte-identical between probe and cache.
fn zip_value(
    ci: u32,
    slot: u32,
    a: &ValueKind,
    p: &ValueKind,
    sentinels: &[(String, RawLiteralKind)],
    out: &mut Vec<Subst>,
) -> Option<()> {
    match p {
        ValueKind::Number(n) => {
            let (negate, body) = match n.strip_prefix('-') {
                Some(rest) => (true, rest),
                None => (false, n.as_str()),
            };
            if let Some(k) = find_sentinel(body, RawLiteralKind::Number, sentinels) {
                return match a {
                    ValueKind::Number(_) => {
                        out.push(Subst {
                            conjunct: ci,
                            slot,
                            lit: k as u32,
                            negate,
                            is_string: false,
                        });
                        Some(())
                    }
                    _ => None,
                };
            }
            (a == p).then_some(())
        }
        ValueKind::String(s) => {
            if let Some(k) =
                find_sentinel(s, RawLiteralKind::String { has_escape: false }, sentinels)
            {
                return match a {
                    ValueKind::String(_) => {
                        out.push(Subst {
                            conjunct: ci,
                            slot,
                            lit: k as u32,
                            negate: false,
                            is_string: true,
                        });
                        Some(())
                    }
                    _ => None,
                };
            }
            (a == p).then_some(())
        }
        _ => (a == p).then_some(()),
    }
}

/// Finds the literal index whose sentinel text (of the right kind) equals
/// `text`. Linear scan; recipes are built once per shape.
fn find_sentinel(
    text: &str,
    kind: RawLiteralKind,
    sentinels: &[(String, RawLiteralKind)],
) -> Option<usize> {
    sentinels.iter().position(|(s, k)| {
        s == text
            && matches!(
                (k, kind),
                (RawLiteralKind::Number, RawLiteralKind::Number)
                    | (RawLiteralKind::String { .. }, RawLiteralKind::String { .. })
            )
    })
}

/// Applies a substitution recipe: clones `base` and overwrites each
/// literal-dependent slot with the text of `sql`'s corresponding literal.
fn rebuild_profile(
    base: &PredicateProfile,
    substs: &[Subst],
    sql: &str,
    lits: &[RawLiteral],
) -> Option<PredicateProfile> {
    let mut profile = base.clone();
    for s in substs {
        let lit = lits.get(s.lit as usize)?;
        let raw = lit.text(sql)?;
        let value = if s.is_string {
            match lit.kind {
                RawLiteralKind::String { has_escape } => ValueKind::String(if has_escape {
                    raw.replace("''", "'")
                } else {
                    raw.to_string()
                }),
                RawLiteralKind::Number => return None,
            }
        } else {
            match lit.kind {
                RawLiteralKind::Number => ValueKind::Number(if s.negate {
                    format!("-{raw}")
                } else {
                    raw.to_string()
                }),
                RawLiteralKind::String { .. } => return None,
            }
        };
        *slot_mut(&mut profile, s.conjunct, s.slot)? = value;
    }
    Some(profile)
}

/// Mutable access to the value slot `(conjunct, slot)` of a profile.
fn slot_mut(p: &mut PredicateProfile, conjunct: u32, slot: u32) -> Option<&mut ValueKind> {
    match (p.conjuncts.get_mut(conjunct as usize)?, slot) {
        (PredicateKind::Comparison { value, .. }, 0) => Some(value),
        (PredicateKind::Between { low, .. }, 0) => Some(low),
        (PredicateKind::Between { high, .. }, 1) => Some(high),
        (PredicateKind::InList { values, .. }, i) => values.get_mut(i as usize),
        (PredicateKind::Like { pattern, .. }, 0) => Some(pattern),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cached_parse(statements: &[&str]) -> (Vec<Outcome>, ShapeCache, TemplateStore) {
        let store = TemplateStore::new();
        let mut memo = FnvHashMap::default();
        let mut cache = ShapeCache::default();
        let limits = ParseLimits::default();
        let outcomes = statements
            .iter()
            .enumerate()
            .map(|(i, sql)| {
                cache.parse_one_cached(
                    &store,
                    &mut memo,
                    &limits,
                    usize::MAX,
                    i as u32,
                    sql,
                    &|j| statements[j as usize],
                )
            })
            .collect();
        (outcomes, cache, store)
    }

    fn full_parse(statements: &[&str]) -> (Vec<Outcome>, TemplateStore) {
        let store = TemplateStore::new();
        let mut memo = FnvHashMap::default();
        let limits = ParseLimits::default();
        let outcomes = statements
            .iter()
            .enumerate()
            .map(|(i, sql)| parse_one(&store, &mut memo, &limits, i as u32, sql))
            .collect();
        (outcomes, store)
    }

    fn records(outcomes: &[Outcome]) -> Vec<&ParsedRecord> {
        outcomes
            .iter()
            .filter_map(|o| match o {
                Outcome::Select(r) => Some(r.as_ref()),
                _ => None,
            })
            .collect()
    }

    fn assert_equivalent(statements: &[&str]) -> ShapeCache {
        let (cached, cache, _store_c) = cached_parse(statements);
        let (full, _store_f) = full_parse(statements);
        let (cached_recs, full_recs) = (records(&cached), records(&full));
        assert_eq!(cached_recs.len(), full_recs.len());
        for (c, f) in cached_recs.iter().zip(&full_recs) {
            assert_eq!(c, f);
        }
        cache
    }

    #[test]
    fn hits_reproduce_full_parse_facts() {
        // The negated statements are their own shape (the `-` is a real
        // token), exercising the negate-fold substitution path.
        let cache = assert_equivalent(&[
            "SELECT name FROM Employee WHERE empId = 8",
            "SELECT name FROM Employee WHERE empId = 9",
            "select NAME from employee where EMPID=10 -- same shape",
            "SELECT name FROM Employee WHERE empId = -3",
            "SELECT name FROM Employee WHERE empId = -77",
        ]);
        assert_eq!(cache.misses, 2);
        assert_eq!(cache.hits, 3);
        assert_eq!(cache.fallbacks, 0);
        #[cfg(debug_assertions)]
        assert_eq!(cache.crosschecks, 3);
    }

    #[test]
    fn string_literals_with_escapes_rebuild() {
        assert_equivalent(&[
            "SELECT a FROM t WHERE s = 'plain' AND r BETWEEN 1 AND 2",
            "SELECT a FROM t WHERE s = 'it''s' AND r BETWEEN 3 AND 4.5",
            "SELECT a FROM t WHERE s = '' AND r BETWEEN -1 AND 1e9",
        ]);
    }

    #[test]
    fn in_list_and_like_slots_rebuild() {
        let cache = assert_equivalent(&[
            "SELECT a FROM t WHERE id IN (1, 2, 3) AND s LIKE 'x%'",
            "SELECT a FROM t WHERE id IN (7, 8, 9) AND s LIKE 'y_z%'",
        ]);
        assert_eq!(cache.hits, 1);
    }

    #[test]
    fn cast_type_size_is_uncacheable_not_wrong() {
        // The skeleton renders the CAST target type verbatim, so the
        // literal inside `varchar(12)` leaks into the template: the probe
        // must refuse to certify the shape and both statements full-parse.
        let stmts = [
            "SELECT CAST(x AS varchar(12)) FROM t WHERE y = 1",
            "SELECT CAST(x AS varchar(99)) FROM t WHERE y = 2",
        ];
        let (cached, cache, store) = cached_parse(&stmts);
        let (full, store_f) = full_parse(&stmts);
        assert_eq!(records(&cached).len(), records(&full).len());
        // Distinct templates must stay distinct.
        assert_eq!(store.len(), store_f.len());
        assert_eq!(cache.hits, 0);
        assert!(cache.fallbacks >= 1);
    }

    #[test]
    fn errors_and_non_selects_are_cached() {
        let (outcomes, cache, _) = cached_parse(&[
            "INSERT INTO t VALUES (1)",
            "INSERT INTO t VALUES (2)",
            "SELECT b FROM",
            "SELECT b FROM",
        ]);
        assert!(matches!(outcomes[1], Outcome::NonSelect(_)));
        assert!(matches!(outcomes[3], Outcome::Error { .. }));
        assert_eq!(cache.hits, 2);
        assert_eq!(cache.misses, 2);
    }

    #[test]
    fn unkeyable_statements_fall_back() {
        let (outcomes, cache, _) = cached_parse(&[
            "SELECT a FROM t WHERE s = 'unterminated",
            "SELECT a FROM t WHERE s = 'unterminated",
        ]);
        assert!(matches!(outcomes[0], Outcome::Error { .. }));
        assert_eq!(cache.fallbacks, 2);
        assert_eq!(cache.hits + cache.misses, 0);
    }

    #[test]
    fn differing_shapes_do_not_collide() {
        let (_, cache, store) = cached_parse(&[
            "SELECT a FROM t WHERE x = 1",
            "SELECT a FROM t WHERE x > 1",
            "SELECT a FROM t WHERE x = 1 AND y = 2",
            "SELECT b FROM t WHERE x = 1",
        ]);
        assert_eq!(cache.misses, 4);
        assert_eq!(cache.hits, 0);
        assert_eq!(store.len(), 4);
    }

    #[test]
    fn variables_and_null_comparisons_carry_over() {
        assert_equivalent(&[
            "SELECT a FROM t WHERE objid = @id AND b = NULL",
            "SELECT a FROM t WHERE OBJID = @ID AND b = NULL",
        ]);
    }
}
