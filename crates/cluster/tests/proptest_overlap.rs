//! Property tests for the overlap metric and the clustering.

use proptest::prelude::*;
use sqlog_cluster::{cluster_regions, region_of_query, Region};
use sqlog_sql::parse_query;

fn region_strategy() -> impl Strategy<Value = Region> {
    (
        0u8..3,                   // table choice
        0i64..1_000,              // window start
        1i64..200,                // window width
        prop::option::of(0u8..5), // optional categorical point
    )
        .prop_map(|(table, lo, width, point)| {
            let table = ["t", "u", "v"][table as usize];
            let sql = match point {
                Some(p) => format!(
                    "SELECT x FROM {table} WHERE h >= {lo} AND h <= {} AND k = 'p{p}'",
                    lo + width
                ),
                None => format!(
                    "SELECT x FROM {table} WHERE h >= {lo} AND h <= {}",
                    lo + width
                ),
            };
            region_of_query(&parse_query(&sql).unwrap())
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Overlap is symmetric and bounded in [0, 1]; a region overlaps itself
    /// fully; distance is its complement.
    #[test]
    fn overlap_metric_properties(a in region_strategy(), b in region_strategy()) {
        let ab = a.overlap(&b);
        let ba = b.overlap(&a);
        prop_assert!((0.0..=1.0).contains(&ab), "overlap {ab}");
        prop_assert!((ab - ba).abs() < 1e-12, "asymmetric: {ab} vs {ba}");
        prop_assert!((a.overlap(&a) - 1.0).abs() < 1e-12);
        prop_assert!((a.distance(&b) - (1.0 - ab)).abs() < 1e-12);
    }

    /// Region keys identify regions exactly.
    #[test]
    fn key_equality_iff_region_equality(a in region_strategy(), b in region_strategy()) {
        prop_assert_eq!(a.key() == b.key(), a == b);
    }

    /// Clustering conserves weight and respects the threshold extremes:
    /// at threshold 0 + ε only identical regions merge; every cluster's
    /// members pairwise-connect through the distance graph by construction.
    #[test]
    fn clustering_conserves_weight(
        regions in prop::collection::vec(region_strategy(), 1..25),
        weights in prop::collection::vec(1u64..5, 25),
        threshold in 0.05f64..0.95,
    ) {
        let weights = &weights[..regions.len()];
        let clustering = cluster_regions(&regions, weights, threshold);
        let total: u64 = weights.iter().sum();
        let clustered: u64 = clustering.clusters.iter().map(|c| c.size).sum();
        prop_assert_eq!(total, clustered);
        // Every region index appears exactly once.
        let mut seen = vec![false; regions.len()];
        for c in &clustering.clusters {
            for &m in &c.members {
                prop_assert!(!seen[m], "region {m} in two clusters");
                seen[m] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Raising the threshold never increases the cluster count (more pairs
    /// connect).
    #[test]
    fn threshold_monotonicity(
        regions in prop::collection::vec(region_strategy(), 1..20),
    ) {
        let weights = vec![1u64; regions.len()];
        let mut prev = usize::MAX;
        for t in [0.1, 0.5, 0.9] {
            let c = cluster_regions(&regions, &weights, t).count();
            prop_assert!(c <= prev, "threshold {t}: {c} > {prev}");
            prev = c;
        }
    }
}
