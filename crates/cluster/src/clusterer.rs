//! Threshold clustering over regions (§6.9).
//!
//! "Queries with a distance smaller than a threshold go to the same cluster"
//! — i.e. clusters are connected components of the distance-below-threshold
//! graph. Identical regions are deduplicated first (most mass sits on
//! distance 0), and candidate pairs are bucketed by region *signature*
//! (table set + constrained columns): regions in different buckets have
//! overlap 0 by construction, so only intra-bucket pairs are compared.

use crate::region::Region;
use sqlog_obs::Recorder;
use std::collections::HashMap;

/// One cluster of queries.
#[derive(Debug, Clone, PartialEq)]
pub struct Cluster {
    /// Total number of queries (weights summed).
    pub size: u64,
    /// Indices of the distinct regions in the input.
    pub members: Vec<usize>,
}

/// Clustering result.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Clustering {
    /// Clusters, sorted by descending size.
    pub clusters: Vec<Cluster>,
    /// Parallel workers that panicked and were re-run row by row under
    /// per-row isolation (always 0 on the sequential path and on healthy
    /// runs).
    pub degraded_shards: usize,
    /// Pair-scan rows dropped because they panicked even under per-row
    /// isolation; their edges are missing from the clustering.
    pub poisoned_rows: usize,
}

impl Clustering {
    /// Number of clusters.
    pub fn count(&self) -> usize {
        self.clusters.len()
    }

    /// Mean cluster size (0 when empty).
    pub fn average_size(&self) -> f64 {
        if self.clusters.is_empty() {
            0.0
        } else {
            self.clusters.iter().map(|c| c.size).sum::<u64>() as f64 / self.clusters.len() as f64
        }
    }

    /// Cluster sizes in descending order (the rank curves of Fig. 4).
    pub fn sizes(&self) -> Vec<u64> {
        self.clusters.iter().map(|c| c.size).collect()
    }
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// Signature of a region: the parts that must match for nonzero overlap.
fn signature(region: &Region) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for t in &region.tables {
        let _ = write!(s, "{t},");
    }
    s.push('|');
    for col in region.dims.keys() {
        let _ = write!(s, "{col},");
    }
    s
}

/// Emits the below-threshold edges of one pair-triangle row — `bucket[pos]`
/// against every later bucket member. The single distance predicate shared
/// by the sequential scan, the parallel workers, and the degraded re-run of
/// a panicked worker, so the three paths cannot silently diverge.
fn scan_row(
    regions: &[Region],
    bucket: &[usize],
    pos: usize,
    threshold: f64,
    emit: &mut impl FnMut(usize, usize),
) {
    let i = bucket[pos];
    for &j in &bucket[pos + 1..] {
        if regions[i].distance(&regions[j]) < threshold {
            emit(i, j);
        }
    }
}

/// Groups union-find components into weight-summed clusters, sorted by
/// descending size (ties broken by member list) for deterministic output.
fn assemble(uf: &mut UnionFind, weights: &[u64]) -> Vec<Cluster> {
    let mut clusters: HashMap<usize, Cluster> = HashMap::new();
    for (i, &w) in weights.iter().enumerate() {
        let root = uf.find(i);
        let c = clusters.entry(root).or_insert_with(|| Cluster {
            size: 0,
            members: Vec::new(),
        });
        c.size += w;
        c.members.push(i);
    }
    let mut clusters: Vec<Cluster> = clusters.into_values().collect();
    clusters.sort_by(|a, b| b.size.cmp(&a.size).then_with(|| a.members.cmp(&b.members)));
    clusters
}

/// Clusters weighted distinct regions: regions `i`, `j` are connected when
/// `distance(i, j) < threshold`.
pub fn cluster_regions(regions: &[Region], weights: &[u64], threshold: f64) -> Clustering {
    assert_eq!(regions.len(), weights.len());
    let n = regions.len();
    let mut uf = UnionFind::new(n);

    let mut buckets: HashMap<String, Vec<usize>> = HashMap::new();
    for (i, r) in regions.iter().enumerate() {
        buckets.entry(signature(r)).or_default().push(i);
    }
    for bucket in buckets.values() {
        for pos in 0..bucket.len().saturating_sub(1) {
            scan_row(regions, bucket, pos, threshold, &mut |i, j| uf.union(i, j));
        }
    }

    Clustering {
        clusters: assemble(&mut uf, weights),
        ..Clustering::default()
    }
}

/// Parallel variant of [`cluster_regions`]: bucket pair-scans run on a
/// scoped thread pool, then the edges merge into one union-find. Produces
/// exactly the same clustering as the sequential version. A worker that
/// panics is re-run row by row under per-row isolation; the recovery is
/// accounted in [`Clustering::degraded_shards`] / [`Clustering::poisoned_rows`]
/// so recovered runs are never silent.
pub fn cluster_regions_parallel(
    regions: &[Region],
    weights: &[u64],
    threshold: f64,
    threads: usize,
) -> Clustering {
    cluster_regions_traced(regions, weights, threshold, threads, &Recorder::disabled())
}

/// [`cluster_regions_parallel`] with observability: a `"cluster"` stage
/// span, per-worker `"cluster.shard"` spans (with a shard-latency
/// histogram) and outcome counters land in `rec`. The clustering is
/// identical to the untraced call.
pub fn cluster_regions_traced(
    regions: &[Region],
    weights: &[u64],
    threshold: f64,
    threads: usize,
    rec: &Recorder,
) -> Clustering {
    assert_eq!(regions.len(), weights.len());
    let stage_span = rec.span("cluster");
    let stage_id = stage_span.id();
    let n = regions.len();
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        threads
    }
    .clamp(1, 64);

    let mut buckets: HashMap<String, Vec<usize>> = HashMap::new();
    for (i, r) in regions.iter().enumerate() {
        buckets.entry(signature(r)).or_default().push(i);
    }
    let buckets: Vec<Vec<usize>> = buckets.into_values().collect();

    // Work unit = one *row* of a bucket's pair triangle, so a single huge
    // bucket (common: all point lookups on one table share a signature)
    // still splits across workers. Rows are dealt round-robin after sorting
    // by cost, which balances the triangle's skew.
    let mut rows: Vec<(usize, usize)> = Vec::new(); // (bucket, position)
    for (b, bucket) in buckets.iter().enumerate() {
        for pos in 0..bucket.len().saturating_sub(1) {
            rows.push((b, pos));
        }
    }
    rows.sort_by_key(|&(b, pos)| std::cmp::Reverse(buckets[b].len() - pos));
    let shards: Vec<Vec<(usize, usize)>> = (0..threads)
        .map(|t| rows.iter().copied().skip(t).step_by(threads).collect())
        .collect();

    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut degraded_shards = 0usize;
    let mut poisoned_rows = 0usize;
    std::thread::scope(|s| {
        let buckets = &buckets;
        let handles: Vec<_> = shards
            .iter()
            .enumerate()
            .map(|(t, shard)| {
                s.spawn(move || {
                    let mut span = rec.span_in(stage_id, "cluster.shard");
                    span.field("shard", t as u64);
                    span.field("items", shard.len() as u64);
                    let started = std::time::Instant::now();
                    let mut local = Vec::new();
                    for &(b, pos) in shard {
                        scan_row(regions, &buckets[b], pos, threshold, &mut |i, j| {
                            local.push((i, j));
                        });
                    }
                    rec.histogram("cluster.shard_us", started.elapsed().as_micros() as u64);
                    local
                })
            })
            .collect();
        for (h, shard) in handles.into_iter().zip(&shards) {
            match h.join() {
                Ok(local) => edges.extend(local),
                Err(_) => {
                    // Degraded re-run of a panicked worker: each pair row
                    // under its own panic guard, so a poison row drops only
                    // its own edges (counted below) instead of aborting the
                    // clustering. Edge order does not matter — union-find
                    // is order-blind and the final cluster list is sorted.
                    degraded_shards += 1;
                    let mut span = rec.span_in(stage_id, "cluster.shard");
                    span.field("items", shard.len() as u64);
                    span.field("degraded", 1u64);
                    for &(b, pos) in shard {
                        let row = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            let mut local = Vec::new();
                            scan_row(regions, &buckets[b], pos, threshold, &mut |i, j| {
                                local.push((i, j));
                            });
                            local
                        }));
                        match row {
                            Ok(local) => edges.extend(local),
                            Err(_) => poisoned_rows += 1,
                        }
                    }
                }
            }
        }
    });

    let mut uf = UnionFind::new(n);
    rec.counter("cluster.regions", n as u64);
    rec.counter("cluster.edges", edges.len() as u64);
    rec.counter("cluster.degraded_shards", degraded_shards as u64);
    rec.counter("cluster.poisoned_rows", poisoned_rows as u64);
    for (i, j) in edges {
        uf.union(i, j);
    }
    let clustering = Clustering {
        clusters: assemble(&mut uf, weights),
        degraded_shards,
        poisoned_rows,
    };
    rec.counter("cluster.clusters", clustering.clusters.len() as u64);
    clustering
}

/// Convenience: dedup + cluster raw SQL statements. Unparsable statements
/// are skipped. Returns the clustering plus the distinct regions.
pub fn cluster_statements<'a>(
    statements: impl IntoIterator<Item = &'a str>,
    threshold: f64,
) -> (Clustering, Vec<Region>) {
    let mut distinct: Vec<Region> = Vec::new();
    let mut weights: Vec<u64> = Vec::new();
    let mut by_key: HashMap<String, usize> = HashMap::new();
    for sql in statements {
        let Ok(stmt) = sqlog_sql::parse_statement(sql) else {
            continue;
        };
        let Some(q) = stmt.as_select() else {
            continue;
        };
        let region = crate::region::region_of_query(q);
        let key = region.key();
        match by_key.get(&key) {
            Some(&i) => weights[i] += 1,
            None => {
                by_key.insert(key, distinct.len());
                distinct.push(region);
                weights.push(1);
            }
        }
    }
    (cluster_regions(&distinct, &weights, threshold), distinct)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::region_of_query;
    use sqlog_sql::parse_query;

    fn regions(sqls: &[&str]) -> Vec<Region> {
        sqls.iter()
            .map(|s| region_of_query(&parse_query(s).unwrap()))
            .collect()
    }

    #[test]
    fn identical_regions_cluster_together() {
        let rs = regions(&[
            "SELECT a FROM t WHERE x = 1",
            "SELECT b FROM t WHERE x = 1",
            "SELECT a FROM t WHERE x = 2",
        ]);
        let c = cluster_regions(&rs, &[1, 1, 1], 0.5);
        assert_eq!(c.count(), 2);
    }

    #[test]
    fn threshold_controls_merging() {
        // Overlap 1/3 → distance 2/3.
        let rs = regions(&[
            "SELECT a FROM t WHERE r BETWEEN 0 AND 10",
            "SELECT a FROM t WHERE r BETWEEN 5 AND 15",
        ]);
        let strict = cluster_regions(&rs, &[1, 1], 0.5);
        assert_eq!(strict.count(), 2);
        let loose = cluster_regions(&rs, &[1, 1], 0.7);
        assert_eq!(loose.count(), 1);
    }

    #[test]
    fn transitive_merging_through_chains() {
        let rs = regions(&[
            "SELECT a FROM t WHERE r BETWEEN 0 AND 10",
            "SELECT a FROM t WHERE r BETWEEN 2 AND 12",
            "SELECT a FROM t WHERE r BETWEEN 4 AND 14",
        ]);
        // Adjacent pairs overlap 8/12 = 2/3 (distance 1/3 < 0.5); the ends
        // overlap 6/14 (distance 4/7 ≥ 0.5) — connectivity is transitive.
        let c = cluster_regions(&rs, &[1, 1, 1], 0.5);
        assert_eq!(c.count(), 1);
    }

    #[test]
    fn parallel_equals_sequential() {
        // Overlapping windows at many distances exercise the merge logic.
        let sqls: Vec<String> = (0..60)
            .map(|i| {
                format!(
                    "SELECT a FROM t{} WHERE r BETWEEN {} AND {}",
                    i % 3,
                    i * 3,
                    i * 3 + 10
                )
            })
            .collect();
        let rs: Vec<Region> = sqls
            .iter()
            .map(|s| region_of_query(&parse_query(s).unwrap()))
            .collect();
        let weights: Vec<u64> = (0..rs.len() as u64).map(|i| i % 4 + 1).collect();
        for t in [0.2, 0.6, 0.9] {
            let seq = cluster_regions(&rs, &weights, t);
            for threads in [1, 4, 0] {
                let par = cluster_regions_parallel(&rs, &weights, t, threads);
                assert_eq!(seq.count(), par.count(), "threshold {t}");
                assert_eq!(seq.sizes(), par.sizes(), "threshold {t}");
                // Healthy runs never report degraded recovery.
                assert_eq!(par.degraded_shards, 0);
                assert_eq!(par.poisoned_rows, 0);
            }
        }
    }

    #[test]
    fn statement_clustering_dedups_and_weights() {
        let (c, distinct) = cluster_statements(
            [
                "SELECT text FROM DBObjects WHERE name='photoobjall'",
                "SELECT description FROM DBObjects WHERE name='photoobjall'",
                "SELECT text FROM DBObjects WHERE name='galaxy'",
                "not sql at all (",
            ],
            0.9,
        );
        // photoobjall text+description share a region key? No — regions are
        // equal but keys equal too, so they dedup to one distinct region of
        // weight 2; galaxy is its own.
        assert_eq!(distinct.len(), 2);
        assert_eq!(c.count(), 2);
        assert_eq!(c.clusters[0].size, 2);
        assert_eq!(c.average_size(), 1.5);
        assert_eq!(c.sizes(), vec![2, 1]);
    }
}
