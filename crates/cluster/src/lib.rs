//! # sqlog-cluster — data-space-overlap query clustering
//!
//! Reproduces the downstream analysis of §6.9 of *"Cleaning Antipatterns in
//! an SQL Query Log"* (after Nguyen et al., "Identifying User Interests
//! within the Data Space", EDBT 2015): each query accesses a region of the
//! data space; queries are clustered by the overlap of those regions.
//! Running this analysis on the raw vs cleaned vs removal logs shows how
//! antipattern cleaning de-noises user-interest detection (Figs. 3 and 4).
//!
//! ```
//! use sqlog_cluster::cluster_statements;
//! let (clustering, _regions) = cluster_statements(
//!     [
//!         "SELECT ra FROM photoprimary WHERE htmid >= 0 AND htmid <= 10",
//!         "SELECT dec FROM photoprimary WHERE htmid >= 0 AND htmid <= 10",
//!         "SELECT ra FROM photoprimary WHERE htmid >= 90 AND htmid <= 95",
//!     ],
//!     0.9,
//! );
//! assert_eq!(clustering.count(), 2);
//! ```

#![warn(missing_docs)]

pub mod clusterer;
pub mod region;

pub use clusterer::{
    cluster_regions, cluster_regions_parallel, cluster_statements, Cluster, Clustering,
};
pub use region::{region_of_query, Dim, Region};
