//! Accessed-data-space regions.
//!
//! The downstream analysis of §6.9 reproduces Nguyen et al. [1]: queries are
//! clustered by the *overlap of the data space they access*. A query's
//! region is the set of base tables it touches plus, per constrained column,
//! the interval or point set its predicates select. Overlap is a product of
//! per-dimension Jaccard similarities; structurally different regions have
//! overlap 0 — which is why observed distances are "very often 0 and 1"
//! (§6.9).

use sqlog_skeleton::{PredicateKind, PredicateProfile, Theta, ValueKind};
use sqlog_sql::ast::{Expr, Literal, Query, TableRef};
use std::collections::{BTreeMap, BTreeSet};

/// One dimension of a region.
#[derive(Debug, Clone, PartialEq)]
pub enum Dim {
    /// A numeric interval (point selections are `[v, v]`).
    Interval {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// A categorical point set.
    Points(BTreeSet<String>),
}

impl Dim {
    /// Jaccard similarity of two dimensions (0 when shapes differ).
    pub fn jaccard(&self, other: &Dim) -> f64 {
        match (self, other) {
            (Dim::Interval { lo: a1, hi: b1 }, Dim::Interval { lo: a2, hi: b2 }) => {
                let inter = (b1.min(*b2) - a1.max(*a2)).max(0.0);
                let union = (b1.max(*b2) - a1.min(*a2)).max(0.0);
                if union == 0.0 {
                    // Two identical points.
                    f64::from(u8::from((a1, b1) == (a2, b2)))
                } else {
                    (inter / union).clamp(0.0, 1.0)
                }
            }
            (Dim::Points(a), Dim::Points(b)) => {
                let inter = a.intersection(b).count() as f64;
                let union = a.union(b).count() as f64;
                if union == 0.0 {
                    1.0
                } else {
                    inter / union
                }
            }
            _ => 0.0,
        }
    }

    fn intersect_interval(&mut self, lo: f64, hi: f64) {
        if let Dim::Interval { lo: a, hi: b } = self {
            *a = a.max(lo);
            *b = b.min(hi);
        }
    }
}

/// The data-space region one query accesses.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Region {
    /// Base tables (and table-valued functions) accessed.
    pub tables: BTreeSet<String>,
    /// Constrained dimensions, keyed by column (or synthetic key).
    pub dims: BTreeMap<String, Dim>,
}

impl Region {
    /// Canonical key: regions with equal keys are identical (used to
    /// deduplicate before the quadratic clustering pass).
    pub fn key(&self) -> String {
        use std::fmt::Write as _;
        let mut k = String::new();
        for t in &self.tables {
            let _ = write!(k, "{t},");
        }
        k.push('|');
        for (col, dim) in &self.dims {
            match dim {
                Dim::Interval { lo, hi } => {
                    let _ = write!(k, "{col}:[{lo};{hi}]");
                }
                Dim::Points(ps) => {
                    let _ = write!(k, "{col}:{{");
                    for p in ps {
                        let _ = write!(k, "{p},");
                    }
                    k.push('}');
                }
            }
        }
        k
    }

    /// Overlap in `[0, 1]`.
    pub fn overlap(&self, other: &Region) -> f64 {
        if self.tables != other.tables {
            return 0.0;
        }
        // Structurally different constraint sets select different shapes.
        if self.dims.len() != other.dims.len() || !self.dims.keys().eq(other.dims.keys()) {
            return 0.0;
        }
        let mut o = 1.0;
        for (col, dim) in &self.dims {
            o *= dim.jaccard(&other.dims[col]);
            if o == 0.0 {
                break;
            }
        }
        o
    }

    /// Distance = 1 − overlap.
    pub fn distance(&self, other: &Region) -> f64 {
        1.0 - self.overlap(other)
    }

    fn add_interval(&mut self, col: String, lo: f64, hi: f64) {
        match self.dims.get_mut(&col) {
            Some(d @ Dim::Interval { .. }) => d.intersect_interval(lo, hi),
            Some(_) => {}
            None => {
                self.dims.insert(col, Dim::Interval { lo, hi });
            }
        }
    }

    fn add_point(&mut self, col: String, point: String) {
        match self.dims.get_mut(&col) {
            Some(Dim::Points(ps)) => {
                ps.insert(point);
            }
            Some(_) => {}
            None => {
                let mut ps = BTreeSet::new();
                ps.insert(point);
                self.dims.insert(col, Dim::Points(ps));
            }
        }
    }
}

/// A very large bound standing in for ±∞ in one-sided comparisons; finite so
/// that Jaccard arithmetic stays NaN-free.
const HUGE: f64 = 1e300;

fn value_as_f64(v: &ValueKind) -> Option<f64> {
    match v {
        ValueKind::Number(n) => sqlog_sql::ast::Literal::Number(n.clone()).as_f64(),
        ValueKind::Bool(b) => Some(f64::from(u8::from(*b))),
        _ => None,
    }
}

fn value_as_point(v: &ValueKind) -> String {
    match v {
        ValueKind::Number(n) => n.clone(),
        ValueKind::String(s) => format!("'{s}'"),
        ValueKind::Bool(b) => b.to_string(),
        ValueKind::Null => "<null>".into(),
        ValueKind::Variable(name) => format!("@{name}"),
        ValueKind::Column(c) => format!("col:{c}"),
        ValueKind::Complex => "<complex>".into(),
    }
}

/// Extracts the region of a query.
pub fn region_of_query(query: &Query) -> Region {
    let mut region = Region::default();
    let body = &query.body;

    // Tables, including table-valued functions (whose arguments
    // parameterize the accessed sky region and become dimensions).
    for t in &body.from {
        collect_tables(t, &mut region);
    }

    // Predicates.
    let profile = PredicateProfile::of_select(body);
    for (i, conj) in profile.conjuncts.iter().enumerate() {
        match conj {
            PredicateKind::Comparison {
                column,
                theta,
                value,
            } => {
                let num = value_as_f64(value);
                match (theta, num) {
                    (Theta::Eq, Some(v)) => region.add_interval(column.clone(), v, v),
                    (Theta::Eq, None) => {
                        region.add_point(column.clone(), value_as_point(value));
                    }
                    (Theta::Lt | Theta::LtEq, Some(v)) => {
                        region.add_interval(column.clone(), -HUGE, v);
                    }
                    (Theta::Gt | Theta::GtEq, Some(v)) => {
                        region.add_interval(column.clone(), v, HUGE);
                    }
                    // Inequalities and non-numeric ranges: structural point.
                    _ => region.add_point(
                        format!("{column}#{i}"),
                        format!("{theta:?}:{}", value_as_point(value)),
                    ),
                }
            }
            PredicateKind::Between {
                column,
                low,
                high,
                negated: false,
            } => {
                if let (Some(lo), Some(hi)) = (value_as_f64(low), value_as_f64(high)) {
                    region.add_interval(column.clone(), lo, hi);
                } else {
                    region.add_point(
                        format!("{column}#{i}"),
                        format!("between:{}:{}", value_as_point(low), value_as_point(high)),
                    );
                }
            }
            PredicateKind::InList {
                column,
                values,
                negated: false,
            } => {
                for v in values {
                    region.add_point(column.clone(), value_as_point(v));
                }
            }
            PredicateKind::IsNull { column, negated } => {
                region.add_point(column.clone(), format!("isnull:{negated}"));
            }
            PredicateKind::Like {
                column,
                pattern,
                negated: false,
            } => {
                region.add_point(column.clone(), format!("like:{}", value_as_point(pattern)));
            }
            other => {
                // Negated / unclassifiable conjuncts contribute a structural
                // dimension so they still separate regions.
                region.add_point(format!("#pred{i}"), format!("{other:?}"));
            }
        }
    }
    region
}

fn collect_tables(t: &TableRef, region: &mut Region) {
    match t {
        TableRef::Table { name, .. } => {
            region.tables.insert(name.last().normalized());
        }
        TableRef::Function { name, args, .. } => {
            let fname = name.last().normalized();
            region.tables.insert(fname.clone());
            for (i, arg) in args.iter().enumerate() {
                match arg {
                    Expr::Literal(lit @ Literal::Number(_)) => {
                        if let Some(v) = lit.as_f64() {
                            region.add_interval(format!("{fname}#{i}"), v, v);
                        }
                    }
                    Expr::Unary { .. } | Expr::Literal(_) | Expr::Variable(_) => {
                        let mut text = String::new();
                        let _ = std::fmt::Write::write_fmt(&mut text, format_args!("{arg}"));
                        region.add_point(format!("{fname}#{i}"), text);
                    }
                    _ => {}
                }
            }
        }
        TableRef::Derived { subquery, .. } => {
            for inner in &subquery.body.from {
                collect_tables(inner, region);
            }
        }
        TableRef::Join { left, right, .. } => {
            collect_tables(left, region);
            collect_tables(right, region);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlog_sql::parse_query;

    fn region(sql: &str) -> Region {
        region_of_query(&parse_query(sql).unwrap())
    }

    #[test]
    fn identical_queries_overlap_fully() {
        let a = region("SELECT x FROM t WHERE htmid >= 100 and htmid <= 200");
        let b = region("SELECT y, z FROM t WHERE htmid >= 100 and htmid <= 200");
        // Projection does not matter — only the accessed space does.
        assert_eq!(a.overlap(&b), 1.0);
        assert_eq!(a.key(), b.key());
    }

    #[test]
    fn disjoint_windows_overlap_zero() {
        let a = region("SELECT x FROM t WHERE htmid >= 100 and htmid <= 200");
        let b = region("SELECT x FROM t WHERE htmid >= 300 and htmid <= 400");
        assert_eq!(a.overlap(&b), 0.0);
        assert_eq!(a.distance(&b), 1.0);
    }

    #[test]
    fn partial_interval_overlap() {
        let a = region("SELECT x FROM t WHERE r BETWEEN 0 AND 10");
        let b = region("SELECT x FROM t WHERE r BETWEEN 5 AND 15");
        // Intersection 5, union 15.
        assert!((a.overlap(&b) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn different_tables_never_overlap() {
        let a = region("SELECT x FROM t WHERE r = 1");
        let b = region("SELECT x FROM u WHERE r = 1");
        assert_eq!(a.overlap(&b), 0.0);
    }

    #[test]
    fn different_constraint_structure_never_overlaps() {
        let a = region("SELECT x FROM t WHERE r = 1");
        let b = region("SELECT x FROM t WHERE r = 1 AND g = 2");
        assert_eq!(a.overlap(&b), 0.0);
    }

    #[test]
    fn point_sets_use_jaccard() {
        let a = region("SELECT x FROM t WHERE name IN ('a', 'b')");
        let b = region("SELECT x FROM t WHERE name IN ('b', 'c')");
        assert!((a.overlap(&b) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn equality_points_match_exactly() {
        let a = region("SELECT text FROM DBObjects WHERE name='photoobjall'");
        let b = region("SELECT description FROM DBObjects WHERE name='photoobjall'");
        let c = region("SELECT description FROM DBObjects WHERE name='galaxy'");
        assert_eq!(a.overlap(&b), 1.0);
        assert_eq!(a.overlap(&c), 0.0);
    }

    #[test]
    fn tvf_arguments_parameterize_the_region() {
        let a = region("SELECT * FROM fgetnearbyobjeq(10.0, 20.0, 1.0) n, photoprimary p WHERE n.objid = p.objid");
        let b = region("SELECT * FROM fgetnearbyobjeq(10.0, 20.0, 1.0) n, photoprimary p WHERE n.objid = p.objid");
        let c = region("SELECT * FROM fgetnearbyobjeq(99.0, 20.0, 1.0) n, photoprimary p WHERE n.objid = p.objid");
        assert_eq!(a.overlap(&b), 1.0);
        assert_eq!(a.overlap(&c), 0.0);
    }

    #[test]
    fn one_sided_ranges_are_nan_free() {
        let a = region("SELECT x FROM t WHERE r > 5");
        let b = region("SELECT x FROM t WHERE r > 6");
        let o = a.overlap(&b);
        assert!(o.is_finite());
        assert!(o > 0.9); // both select "everything large"
    }

    #[test]
    fn conjunct_intervals_intersect() {
        let a = region("SELECT x FROM t WHERE r >= 10 AND r <= 20");
        let b = region("SELECT x FROM t WHERE r BETWEEN 10 AND 20");
        assert_eq!(a.overlap(&b), 1.0);
    }
}
