//! Fixed-bucket log2 histograms.
//!
//! Bucket 0 holds the value `0`; bucket `k` (1 ≤ k ≤ 64) holds values in
//! `[2^(k-1), 2^k)`, with bucket 64's upper bound saturating at
//! [`u64::MAX`]. 65 buckets therefore cover the full `u64` range with no
//! configuration, which is what makes them safe to hard-code into a
//! recorder that must never allocate per observation.

use crate::json::Json;

/// Number of buckets: the zero bucket plus one per power of two.
pub const BUCKETS: usize = 65;

/// A log2 histogram over `u64` observations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Observation counts per bucket (see module docs for bounds).
    pub buckets: [u64; BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of observations (saturating).
    pub sum: u64,
    /// Smallest observation (meaningless while `count == 0`).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// The bucket a value falls into.
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        // floor(log2(value)) + 1: value 1 → bucket 1, u64::MAX → bucket 64.
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive `[lo, hi]` bounds of a bucket.
pub fn bucket_bounds(bucket: usize) -> (u64, u64) {
    assert!(bucket < BUCKETS, "bucket {bucket} out of range");
    if bucket == 0 {
        (0, 0)
    } else if bucket == BUCKETS - 1 {
        (1u64 << (bucket - 1), u64::MAX)
    } else {
        (1u64 << (bucket - 1), (1u64 << bucket) - 1)
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Mean observation, `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`q` clamped to `[0, 1]`), `0` when empty.
    ///
    /// The estimator is deterministic and documented so reports can pin
    /// exact values: the target rank is `max(1, ceil(q * count))`; the
    /// bucket holding that rank is found by cumulative count, and the
    /// estimate interpolates linearly across the bucket's `[lo, hi]` value
    /// range by the rank's position within the bucket
    /// (`lo + (hi - lo) * within / bucket_count`). The result is clamped to
    /// the recorded `[min, max]`, so `quantile(0.0) >= min` and
    /// `quantile(1.0) == max` always hold.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c >= rank {
                let (lo, hi) = bucket_bounds(i);
                let within = rank - cum; // 1..=c
                let est = lo as f64 + (hi - lo) as f64 * within as f64 / c as f64;
                // Clamp into the observed range: the bucket bounds can
                // overshoot what was actually recorded.
                return (est as u64).clamp(self.min, self.max);
            }
            cum += c;
        }
        self.max // unreachable while count == sum(buckets); safe fallback
    }

    /// Median estimate ([`Histogram::quantile`] at 0.5).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// JSON form: only non-empty buckets are listed, as `[bucket, count]`
    /// pairs, keeping NDJSON lines short for sparse distributions. The
    /// `p50`/`p95`/`p99` fields are derived ([`Histogram::quantile`]) —
    /// [`Histogram::from_json`] ignores them and recomputes on demand, so
    /// the round-trip stays exact.
    pub fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| Json::Arr(vec![Json::U64(i as u64), Json::U64(c)]))
            .collect();
        Json::obj(vec![
            ("count", Json::U64(self.count)),
            ("sum", Json::U64(self.sum)),
            ("min", Json::U64(if self.count == 0 { 0 } else { self.min })),
            ("max", Json::U64(self.max)),
            ("p50", Json::U64(self.p50())),
            ("p95", Json::U64(self.p95())),
            ("p99", Json::U64(self.p99())),
            ("buckets", Json::Arr(buckets)),
        ])
    }

    /// Rebuilds a histogram from its [`Histogram::to_json`] form.
    pub fn from_json(v: &Json) -> Result<Histogram, String> {
        let mut h = Histogram::new();
        h.count = v
            .get("count")
            .and_then(Json::as_u64)
            .ok_or("histogram: missing count")?;
        h.sum = v
            .get("sum")
            .and_then(Json::as_u64)
            .ok_or("histogram: missing sum")?;
        let min = v
            .get("min")
            .and_then(Json::as_u64)
            .ok_or("histogram: missing min")?;
        h.min = if h.count == 0 { u64::MAX } else { min };
        h.max = v
            .get("max")
            .and_then(Json::as_u64)
            .ok_or("histogram: missing max")?;
        for pair in v
            .get("buckets")
            .and_then(Json::as_arr)
            .ok_or("histogram: missing buckets")?
        {
            let pair = pair.as_arr().ok_or("histogram: bucket not a pair")?;
            let [idx, cnt] = pair else {
                return Err("histogram: bucket pair arity".to_string());
            };
            let idx = idx.as_usize().ok_or("histogram: bad bucket index")?;
            if idx >= BUCKETS {
                return Err(format!("histogram: bucket {idx} out of range"));
            }
            h.buckets[idx] = cnt.as_u64().ok_or("histogram: bad bucket count")?;
        }
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        // The satellite-task edge cases: 0, 1, u64::MAX — plus every power
        // of two boundary.
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for k in 1..64 {
            let lo = 1u64 << (k - 1);
            assert_eq!(bucket_of(lo), k, "2^{}", k - 1);
            assert_eq!(bucket_of(lo * 2 - 1), k, "2^{k}-1");
            let (blo, bhi) = bucket_bounds(k);
            assert_eq!((blo, bhi), (lo, lo * 2 - 1));
        }
        assert_eq!(bucket_bounds(0), (0, 0));
        assert_eq!(bucket_bounds(64), (1u64 << 63, u64::MAX));
    }

    #[test]
    fn every_value_lands_inside_its_bounds() {
        for v in [0, 1, 2, 3, 7, 8, 1023, 1024, u64::MAX / 2, u64::MAX] {
            let b = bucket_of(v);
            let (lo, hi) = bucket_bounds(b);
            assert!(lo <= v && v <= hi, "{v} not in bucket {b} [{lo}, {hi}]");
        }
    }

    #[test]
    fn record_and_merge() {
        let mut a = Histogram::new();
        a.record(0);
        a.record(5);
        let mut b = Histogram::new();
        b.record(u64::MAX);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.min, 0);
        assert_eq!(a.max, u64::MAX);
        assert_eq!(a.sum, u64::MAX); // saturated
        assert_eq!(a.buckets[0], 1);
        assert_eq!(a.buckets[3], 1); // 5 ∈ [4, 8)
        assert_eq!(a.buckets[64], 1);
    }

    #[test]
    fn quantiles_on_known_fills() {
        // Empty histogram: every quantile is 0 by definition.
        let empty = Histogram::new();
        assert_eq!(empty.p50(), 0);
        assert_eq!(empty.p99(), 0);
        assert_eq!(empty.quantile(1.0), 0);

        // 1..=100: the documented estimator pins exact values.
        // Bucket 6 covers [32, 63] and holds 32 observations, with 31
        // observations below it; rank(0.5) = 50 lands 19 deep, so
        // p50 = 32 + 31 * 19 / 32 = 50 (truncated).
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.p50(), 50);
        // Ranks 95 and 99 land in bucket 7 ([64, 127]), whose interpolated
        // estimates (118, 125) overshoot the recorded max and clamp to it.
        assert_eq!(h.p95(), 100);
        assert_eq!(h.p99(), 100);
        assert_eq!(h.quantile(0.0), 1, "q=0 clamps to rank 1 = min");
        assert_eq!(h.quantile(1.0), 100, "q=1 is always the max");
        assert_eq!(h.quantile(-3.0), 1, "q below range clamps to 0");
        assert_eq!(h.quantile(7.0), 100, "q above range clamps to 1");

        // A point mass: interpolation would undershoot, but clamping to the
        // observed [min, max] makes every quantile exact.
        let mut point = Histogram::new();
        for _ in 0..1000 {
            point.record(7);
        }
        assert_eq!(point.p50(), 7);
        assert_eq!(point.p95(), 7);
        assert_eq!(point.p99(), 7);

        // All zeros stay in the zero bucket.
        let mut zeros = Histogram::new();
        for _ in 0..10 {
            zeros.record(0);
        }
        assert_eq!(zeros.p50(), 0);
        assert_eq!(zeros.quantile(1.0), 0);
    }

    #[test]
    fn quantiles_exported_in_json() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let j = h.to_json();
        assert_eq!(j.get("p50").and_then(Json::as_u64), Some(50));
        assert_eq!(j.get("p95").and_then(Json::as_u64), Some(100));
        assert_eq!(j.get("p99").and_then(Json::as_u64), Some(100));
    }

    #[test]
    fn json_round_trip() {
        let mut h = Histogram::new();
        for v in [0, 1, 1, 900, u64::MAX] {
            h.record(v);
        }
        let parsed = Histogram::from_json(&Json::parse(&h.to_json().render()).unwrap()).unwrap();
        assert_eq!(parsed, h);

        let empty = Histogram::new();
        let parsed =
            Histogram::from_json(&Json::parse(&empty.to_json().render()).unwrap()).unwrap();
        assert_eq!(parsed, empty);
    }
}
