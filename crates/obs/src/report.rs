//! The machine-readable run report: per-stage/per-shard timings, counters,
//! histograms and warnings, aggregated from a [`Recorder`]'s raw spans.
//!
//! Span-name convention (established by the pipeline instrumentation):
//! a stage opens a span named after itself (`"dedup"`, `"parse"`, …) and
//! each of its shard workers opens a child span named `"<stage>.shard"`
//! carrying `shard` (index) and `items` (work units) fields. The report
//! groups shard spans under their stage and derives an **imbalance** factor
//! — max shard duration over mean shard duration — the number a perf PR
//! looks at first when a thread count stops scaling.

use crate::histogram::Histogram;
use crate::json::Json;
use crate::recorder::{FieldValue, Recorder};
use std::collections::BTreeMap;

/// Timing of one shard of a stage.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardTiming {
    /// Shard index within the stage.
    pub shard: u64,
    /// Work items the shard processed (stage-specific unit).
    pub items: u64,
    /// Wall-clock microseconds.
    pub dur_us: u64,
}

/// Aggregated observability of one stage.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StageSummary {
    /// Total stage wall-clock (sum over same-named stage spans), µs.
    pub total_us: u64,
    /// Per-shard timings, ordered by shard index.
    pub shards: Vec<ShardTiming>,
    /// Max shard duration / mean shard duration (`0.0` without shards;
    /// `1.0` = perfectly balanced).
    pub imbalance: f64,
}

/// The observability section of a run report.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ObsReport {
    /// Per-stage summaries, keyed by stage name.
    pub stages: BTreeMap<String, StageSummary>,
    /// Counter totals.
    pub counters: BTreeMap<String, u64>,
    /// Histograms.
    pub histograms: BTreeMap<String, Histogram>,
    /// Warnings routed through the recorder, in order.
    pub warnings: Vec<String>,
    /// Total spans recorded (shard spans included).
    pub spans_recorded: usize,
}

fn field_u64(fields: &[(&'static str, FieldValue)], key: &str) -> Option<u64> {
    fields.iter().find_map(|(k, v)| {
        if *k == key {
            match v {
                FieldValue::U64(n) => Some(*n),
                FieldValue::Str(_) => None,
            }
        } else {
            None
        }
    })
}

impl ObsReport {
    /// Builds the report from everything a recorder has collected so far.
    /// A disabled recorder yields the empty report.
    pub fn from_recorder(recorder: &Recorder) -> ObsReport {
        let spans = recorder.spans();
        let mut stages: BTreeMap<String, StageSummary> = BTreeMap::new();
        for span in &spans {
            match span.name.strip_suffix(".shard") {
                Some(stage) => {
                    let entry = stages.entry(stage.to_string()).or_default();
                    entry.shards.push(ShardTiming {
                        shard: field_u64(&span.fields, "shard").unwrap_or(0),
                        items: field_u64(&span.fields, "items").unwrap_or(0),
                        dur_us: span.dur_us,
                    });
                }
                None => {
                    stages.entry(span.name.to_string()).or_default().total_us += span.dur_us;
                }
            }
        }
        for summary in stages.values_mut() {
            summary.shards.sort_by_key(|s| s.shard);
            if !summary.shards.is_empty() {
                let max = summary.shards.iter().map(|s| s.dur_us).max().unwrap_or(0);
                let mean = summary.shards.iter().map(|s| s.dur_us).sum::<u64>() as f64
                    / summary.shards.len() as f64;
                summary.imbalance = if mean > 0.0 { max as f64 / mean } else { 0.0 };
            }
        }
        ObsReport {
            stages,
            counters: recorder.counters(),
            histograms: recorder.histograms(),
            warnings: recorder.warnings().into_iter().map(|w| w.message).collect(),
            spans_recorded: spans.len(),
        }
    }

    /// The report as a JSON object.
    pub fn to_json(&self) -> Json {
        let stages = Json::Obj(
            self.stages
                .iter()
                .map(|(name, s)| {
                    let shards = Json::Arr(
                        s.shards
                            .iter()
                            .map(|sh| {
                                Json::obj(vec![
                                    ("shard", Json::U64(sh.shard)),
                                    ("items", Json::U64(sh.items)),
                                    ("dur_us", Json::U64(sh.dur_us)),
                                ])
                            })
                            .collect(),
                    );
                    let v = Json::obj(vec![
                        ("total_us", Json::U64(s.total_us)),
                        ("shards", shards),
                        ("imbalance", Json::F64(s.imbalance)),
                    ]);
                    (name.clone(), v)
                })
                .collect(),
        );
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(k, &v)| (k.clone(), Json::U64(v)))
                .collect(),
        );
        let histograms = Json::Obj(
            self.histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.to_json()))
                .collect(),
        );
        Json::obj(vec![
            ("stages", stages),
            ("counters", counters),
            ("histograms", histograms),
            (
                "warnings",
                Json::Arr(self.warnings.iter().map(|w| Json::Str(w.clone())).collect()),
            ),
            ("spans_recorded", Json::U64(self.spans_recorded as u64)),
        ])
    }

    /// Rebuilds a report from its [`ObsReport::to_json`] form.
    pub fn from_json(v: &Json) -> Result<ObsReport, String> {
        let mut report = ObsReport::default();
        for (name, sv) in v
            .get("stages")
            .and_then(Json::as_obj)
            .ok_or("obs: missing stages")?
        {
            let mut summary = StageSummary {
                total_us: sv
                    .get("total_us")
                    .and_then(Json::as_u64)
                    .ok_or("obs: stage total_us")?,
                imbalance: sv
                    .get("imbalance")
                    .and_then(Json::as_f64)
                    .ok_or("obs: stage imbalance")?,
                shards: Vec::new(),
            };
            for sh in sv
                .get("shards")
                .and_then(Json::as_arr)
                .ok_or("obs: stage shards")?
            {
                summary.shards.push(ShardTiming {
                    shard: sh.get("shard").and_then(Json::as_u64).ok_or("obs: shard")?,
                    items: sh.get("items").and_then(Json::as_u64).ok_or("obs: items")?,
                    dur_us: sh
                        .get("dur_us")
                        .and_then(Json::as_u64)
                        .ok_or("obs: dur_us")?,
                });
            }
            report.stages.insert(name.clone(), summary);
        }
        for (k, cv) in v
            .get("counters")
            .and_then(Json::as_obj)
            .ok_or("obs: missing counters")?
        {
            report
                .counters
                .insert(k.clone(), cv.as_u64().ok_or("obs: counter value")?);
        }
        for (k, hv) in v
            .get("histograms")
            .and_then(Json::as_obj)
            .ok_or("obs: missing histograms")?
        {
            report
                .histograms
                .insert(k.clone(), Histogram::from_json(hv)?);
        }
        for w in v
            .get("warnings")
            .and_then(Json::as_arr)
            .ok_or("obs: missing warnings")?
        {
            report
                .warnings
                .push(w.as_str().ok_or("obs: warning text")?.to_string());
        }
        report.spans_recorded = v
            .get("spans_recorded")
            .and_then(Json::as_usize)
            .ok_or("obs: spans_recorded")?;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span;

    #[test]
    fn aggregates_shards_under_stages() {
        let rec = Recorder::new();
        {
            let stage = rec.span("dedup");
            let id = stage.id();
            for i in 0..4u64 {
                let mut g = rec.span_in(id, "dedup.shard");
                g.field("shard", i);
                g.field("items", 10 * (i + 1));
            }
        }
        {
            let _solve = span!(rec, "solve");
        }
        rec.counter("dedup.removed", 3);
        rec.warning("armed");

        let report = ObsReport::from_recorder(&rec);
        let dedup = &report.stages["dedup"];
        assert_eq!(dedup.shards.len(), 4);
        assert_eq!(dedup.shards[2].items, 30);
        assert!(dedup.imbalance >= 1.0 || dedup.imbalance == 0.0);
        assert!(report.stages.contains_key("solve"));
        assert_eq!(report.counters["dedup.removed"], 3);
        assert_eq!(report.warnings, vec!["armed".to_string()]);
        assert_eq!(report.spans_recorded, 6);
    }

    #[test]
    fn json_round_trip() {
        let rec = Recorder::new();
        {
            let stage = rec.span("parse");
            let id = stage.id();
            let mut g = rec.span_in(id, "parse.shard");
            g.field("shard", 0u64);
            g.field("items", 123u64);
        }
        rec.counter("parse.selects", 99);
        rec.histogram("parse.shard_us", 17);
        rec.histogram("parse.shard_us", u64::MAX);
        rec.warning("w1");
        let report = ObsReport::from_recorder(&rec);
        let text = report.to_json().render();
        let parsed = ObsReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn disabled_recorder_yields_empty_report() {
        let report = ObsReport::from_recorder(&Recorder::disabled());
        assert_eq!(report, ObsReport::default());
        // …and the empty report still round-trips.
        let parsed = ObsReport::from_json(&Json::parse(&report.to_json().render()).unwrap());
        assert_eq!(parsed.unwrap(), report);
    }
}
