//! The run ledger: a durable, append-only history of run summaries.
//!
//! A ledger is a directory of small JSON files, one per run. Appending
//! writes a uniquely named `run-…​.json` through `AtomicFile` (temp file +
//! fsync + rename), so concurrent writers never clash — each run owns its
//! filename (millisecond timestamp + pid + per-process counter) — and a
//! crash mid-append leaves at most an orphaned `.tmp`, never a torn
//! entry. Readers list the directory, sort by filename (chronological by
//! construction), and *skip* anything unparseable with a warning instead
//! of failing: a ledger survives partial damage the way a query log
//! survives a bad line.
//!
//! Each entry is schema-versioned ([`LEDGER_SCHEMA`]) and carries enough
//! identity to make cross-run comparison meaningful: the config
//! fingerprint and input hash reuse the checkpoint manifest's
//! fingerprinting, and [`MachineInfo`] pins where the numbers were
//! measured. The run report itself is embedded as raw [`Json`] — this
//! crate stays below `sqlog-core`, so it stores the report without
//! knowing its shape; `sqlog-report` parses it back into a `RunReport`.

use crate::json::Json;
use sqlog_log::atomic::AtomicFile;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Version of the ledger entry schema. Bump on breaking layout changes;
/// readers reject entries with a different major version.
pub const LEDGER_SCHEMA: u64 = 1;

/// Where a ledger entry was produced: enough to explain why two runs of
/// the same config and input still differ in wall-clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineInfo {
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// Available parallelism (0 when undeterminable).
    pub cpus: u64,
    /// Hostname, empty when undeterminable.
    pub hostname: String,
}

impl MachineInfo {
    /// Captures the current machine's identity.
    pub fn capture() -> MachineInfo {
        MachineInfo {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            cpus: std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(0),
            hostname: hostname(),
        }
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("os", Json::Str(self.os.clone())),
            ("arch", Json::Str(self.arch.clone())),
            ("cpus", Json::U64(self.cpus)),
            ("hostname", Json::Str(self.hostname.clone())),
        ])
    }

    fn from_json(v: &Json) -> Result<MachineInfo, String> {
        let str_of = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("ledger machine: missing {k}"))
        };
        Ok(MachineInfo {
            os: str_of("os")?,
            arch: str_of("arch")?,
            cpus: v
                .get("cpus")
                .and_then(Json::as_u64)
                .ok_or("ledger machine: missing cpus")?,
            hostname: str_of("hostname")?,
        })
    }
}

/// Best-effort hostname: `$HOSTNAME` (set by most login shells), then the
/// kernel's view on Linux, else empty.
fn hostname() -> String {
    if let Ok(h) = std::env::var("HOSTNAME") {
        if !h.is_empty() {
            return h;
        }
    }
    #[cfg(target_os = "linux")]
    if let Ok(h) = std::fs::read_to_string("/proc/sys/kernel/hostname") {
        return h.trim().to_string();
    }
    String::new()
}

/// One run's summary in the ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerEntry {
    /// Entry schema version ([`LEDGER_SCHEMA`]).
    pub schema: u64,
    /// What produced this entry: `"clean"` or `"conform"`.
    pub kind: String,
    /// Wall-clock creation time, milliseconds since the Unix epoch.
    pub created_unix_ms: u64,
    /// Semantic-config fingerprint (same function as the checkpoint
    /// manifest's), `0` when not applicable.
    pub config_fingerprint: u64,
    /// Input file length in bytes, `0` when not applicable.
    pub input_bytes: u64,
    /// FNV-1a 64 hash of the input file, `0` when not applicable.
    pub input_fnv: u64,
    /// Where the run executed.
    pub machine: MachineInfo,
    /// The run report (a `RunReport` for `clean`, the conformance summary
    /// for `conform`), stored as raw JSON.
    pub report: Json,
}

impl LedgerEntry {
    /// Serializes the entry to its JSON object form.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::U64(self.schema)),
            ("kind", Json::Str(self.kind.clone())),
            ("created_unix_ms", Json::U64(self.created_unix_ms)),
            ("config_fingerprint", Json::U64(self.config_fingerprint)),
            ("input_bytes", Json::U64(self.input_bytes)),
            ("input_fnv", Json::U64(self.input_fnv)),
            ("machine", self.machine.to_json()),
            ("report", self.report.clone()),
        ])
    }

    /// Rebuilds an entry from its [`LedgerEntry::to_json`] form.
    pub fn from_json(v: &Json) -> Result<LedgerEntry, String> {
        let schema = v
            .get("schema")
            .and_then(Json::as_u64)
            .ok_or("ledger entry: missing schema")?;
        if schema != LEDGER_SCHEMA {
            return Err(format!(
                "ledger entry: schema {schema} unsupported (reader understands {LEDGER_SCHEMA})"
            ));
        }
        Ok(LedgerEntry {
            schema,
            kind: v
                .get("kind")
                .and_then(Json::as_str)
                .ok_or("ledger entry: missing kind")?
                .to_string(),
            created_unix_ms: v
                .get("created_unix_ms")
                .and_then(Json::as_u64)
                .ok_or("ledger entry: missing created_unix_ms")?,
            config_fingerprint: v
                .get("config_fingerprint")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            input_bytes: v.get("input_bytes").and_then(Json::as_u64).unwrap_or(0),
            input_fnv: v.get("input_fnv").and_then(Json::as_u64).unwrap_or(0),
            machine: MachineInfo::from_json(
                v.get("machine").ok_or("ledger entry: missing machine")?,
            )?,
            report: v
                .get("report")
                .cloned()
                .ok_or("ledger entry: missing report")?,
        })
    }
}

/// Disambiguates appends from the same process in the same millisecond
/// (shared across all `Ledger` values — the filename only needs process-
/// wide uniqueness).
static APPEND_SEQ: AtomicU64 = AtomicU64::new(0);

/// One readable entry paired with the file it came from.
pub type ReadEntry = (PathBuf, LedgerEntry);

/// A ledger directory handle.
pub struct Ledger {
    dir: PathBuf,
}

impl Ledger {
    /// Opens (creating if necessary) the ledger directory.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Ledger> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        Ok(Ledger { dir })
    }

    /// The ledger directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Appends one entry, returning the path it was written to. The write
    /// is atomic; concurrent appends (threads or processes) never collide
    /// because the filename embeds timestamp, pid, and a process-local
    /// counter.
    pub fn append(&self, entry: &LedgerEntry) -> io::Result<PathBuf> {
        let seq = APPEND_SEQ.fetch_add(1, Ordering::Relaxed);
        // Zero-padded millis keep lexicographic order == chronological
        // order until the year 33658.
        let name = format!(
            "run-{:015}-{:07}-{:05}.json",
            entry.created_unix_ms,
            std::process::id(),
            seq
        );
        let path = self.dir.join(name);
        let mut f = AtomicFile::create(&path)?;
        f.write_all(entry.to_json().render().as_bytes())?;
        f.write_all(b"\n")?;
        f.commit()?;
        Ok(path)
    }

    /// Reads all entries, sorted by filename (chronological). Unreadable
    /// or unparseable files — including an in-flight `.tmp` from a
    /// concurrent writer or a crash — are skipped, with one warning string
    /// per skip.
    pub fn entries(&self) -> io::Result<(Vec<ReadEntry>, Vec<String>)> {
        let mut names: Vec<PathBuf> = Vec::new();
        for e in std::fs::read_dir(&self.dir)? {
            let path = e?.path();
            let is_entry = path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("run-") && n.ends_with(".json"));
            if is_entry {
                names.push(path);
            }
        }
        names.sort();
        let mut out = Vec::with_capacity(names.len());
        let mut warnings = Vec::new();
        for path in names {
            match read_entry(&path) {
                Ok(entry) => out.push((path, entry)),
                Err(why) => warnings.push(format!("ledger: skipping {}: {why}", path.display())),
            }
        }
        Ok((out, warnings))
    }

    /// The newest entry, `None` on an empty (or fully corrupt) ledger.
    pub fn latest(&self) -> io::Result<Option<ReadEntry>> {
        let (mut entries, _) = self.entries()?;
        Ok(entries.pop())
    }
}

fn read_entry(path: &Path) -> Result<LedgerEntry, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let v = Json::parse(text.trim()).map_err(|e| e.to_string())?;
    LedgerEntry::from_json(&v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sqlog_ledger_{}_{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn entry(kind: &str, ms: u64) -> LedgerEntry {
        LedgerEntry {
            schema: LEDGER_SCHEMA,
            kind: kind.to_string(),
            created_unix_ms: ms,
            config_fingerprint: 0xfeed,
            input_bytes: 123,
            input_fnv: 0xbeef,
            machine: MachineInfo::capture(),
            report: Json::obj(vec![("ok", Json::Bool(true))]),
        }
    }

    #[test]
    fn append_and_read_round_trip() {
        let ledger = Ledger::open(scratch("roundtrip")).unwrap();
        let a = entry("clean", 1000);
        let b = entry("conform", 2000);
        ledger.append(&a).unwrap();
        ledger.append(&b).unwrap();
        let (entries, warnings) = ledger.entries().unwrap();
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].1, a, "sorted chronologically");
        assert_eq!(entries[1].1, b);
        assert_eq!(ledger.latest().unwrap().unwrap().1, b);
        std::fs::remove_dir_all(ledger.dir()).ok();
    }

    #[test]
    fn corrupt_and_torn_files_are_skipped_with_warnings() {
        let ledger = Ledger::open(scratch("torn")).unwrap();
        ledger.append(&entry("clean", 1000)).unwrap();
        // A torn record (truncated JSON) and an in-flight temp file, as a
        // crash or concurrent writer would leave them.
        std::fs::write(
            ledger.dir().join("run-000000000002000-0000001-00000.json"),
            "{\"sch",
        )
        .unwrap();
        std::fs::write(
            ledger
                .dir()
                .join("run-000000000003000-0000001-00000.json.tmp"),
            "partial",
        )
        .unwrap();
        // A future-schema entry is skipped, not misread.
        std::fs::write(
            ledger.dir().join("run-000000000004000-0000001-00000.json"),
            "{\"schema\": 999}",
        )
        .unwrap();
        let (entries, warnings) = ledger.entries().unwrap();
        assert_eq!(entries.len(), 1, "{entries:?}");
        assert_eq!(entries[0].1.created_unix_ms, 1000);
        assert_eq!(warnings.len(), 2, "{warnings:?}");
        assert!(
            warnings.iter().all(|w| w.contains("skipping")),
            "{warnings:?}"
        );
        std::fs::remove_dir_all(ledger.dir()).ok();
    }

    #[test]
    fn concurrent_writers_never_lose_or_tear_entries() {
        // Appenders in one process race only on the sequence counter (the
        // filename embeds pid + a process-local AtomicU64), so N threads
        // appending simultaneously must yield exactly N readable entries
        // and zero warnings — while a reader polls mid-flight without ever
        // observing a torn record.
        let ledger = std::sync::Arc::new(Ledger::open(scratch("concurrent")).unwrap());
        const WRITERS: usize = 8;
        const PER_WRITER: usize = 16;
        std::thread::scope(|s| {
            for w in 0..WRITERS {
                let ledger = std::sync::Arc::clone(&ledger);
                s.spawn(move || {
                    for i in 0..PER_WRITER {
                        ledger
                            .append(&entry("clean", (w * PER_WRITER + i) as u64))
                            .unwrap();
                    }
                });
            }
            let reader = std::sync::Arc::clone(&ledger);
            s.spawn(move || {
                for _ in 0..20 {
                    let (_, warnings) = reader.entries().unwrap();
                    assert!(warnings.is_empty(), "mid-flight read saw: {warnings:?}");
                    std::thread::yield_now();
                }
            });
        });
        let (entries, warnings) = ledger.entries().unwrap();
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(entries.len(), WRITERS * PER_WRITER);
        let mut stamps: Vec<u64> = entries.iter().map(|(_, e)| e.created_unix_ms).collect();
        stamps.sort_unstable();
        stamps.dedup();
        assert_eq!(stamps.len(), WRITERS * PER_WRITER, "every append surfaced");
        std::fs::remove_dir_all(ledger.dir()).ok();
    }

    #[test]
    fn entry_json_round_trip() {
        let e = entry("clean", 42);
        let parsed = LedgerEntry::from_json(&Json::parse(&e.to_json().render()).unwrap()).unwrap();
        assert_eq!(parsed, e);
    }
}
