//! The recorder: spans, counters, histograms and warnings.
//!
//! A [`Recorder`] is either **enabled** — it owns shared state behind an
//! `Arc` and every observation lands there — or **disabled**, in which case
//! it holds nothing and every call is a branch on `Option::is_none` followed
//! by an immediate return. There is no global registry: the pipeline passes
//! its recorder through `PipelineConfig`, tests create their own, and two
//! recorders never interfere.
//!
//! **Spans** measure monotonic wall-clock (microseconds since the
//! recorder's creation) and nest: a span opened while another is active on
//! the same thread becomes its child. Work handed to another thread cannot
//! see the spawning thread's stack, so shard workers open their spans with
//! [`Recorder::span_in`], passing the parent id captured before the spawn.
//! Completed spans are pushed into the shared state under a mutex — one
//! lock per span *completion*, never per record.
//!
//! **Counters** are monotonic sums and **histograms** are fixed log2
//! buckets ([`crate::histogram`]); both are keyed by `&'static str` names.
//! Stages accumulate locally and flush per shard, so the mutex is taken a
//! handful of times per stage, not per query.

use crate::histogram::Histogram;
use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Identifier of a recorded span (unique within one recorder).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

/// A field attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// An unsigned number.
    U64(u64),
    /// A string.
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}

/// A completed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span id.
    pub id: u64,
    /// Parent span id (`None` for roots).
    pub parent: Option<u64>,
    /// Span name (a static label like `"parse.shard"`).
    pub name: &'static str,
    /// Attached fields, in attachment order.
    pub fields: Vec<(&'static str, FieldValue)>,
    /// Start, in microseconds since the recorder's creation.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

/// A recorded warning (routed diagnostics, e.g. fault-injection arming).
#[derive(Debug, Clone, PartialEq)]
pub struct WarningRecord {
    /// When it was recorded, microseconds since recorder creation.
    pub at_us: u64,
    /// The message.
    pub message: String,
}

#[derive(Default)]
struct State {
    spans: Vec<SpanRecord>,
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
    warnings: Vec<WarningRecord>,
}

/// Live gauge state of the stage currently executing (see
/// [`Recorder::stage_begin`]). Kept under its own small mutex so a
/// progress poller never contends with span completions.
#[derive(Default)]
struct ProgressState {
    stage: Option<&'static str>,
    done: u64,
    total: u64,
    skipped: bool,
    started_us: u64,
    seq: u64,
    /// Every stage declared skipped so far, in order. A poller can consume
    /// this log at its own pace — fast stage transitions between two polls
    /// would otherwise make skipped stages invisible.
    skipped_log: Vec<&'static str>,
}

/// A point-in-time view of pipeline progress, for live `--progress`
/// rendering. Unlike spans (recorded on *completion*), this reflects the
/// stage that is executing right now.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgressSnapshot {
    /// Name of the current stage.
    pub stage: &'static str,
    /// Items processed so far (whatever unit the stage reports — log
    /// entries, statements, sessions).
    pub done: u64,
    /// Expected total items, `0` when unknown.
    pub total: u64,
    /// The stage was restored from a checkpoint rather than executed.
    pub skipped: bool,
    /// When the stage began, microseconds since the recorder's epoch.
    pub started_us: u64,
    /// When this snapshot was taken, same clock.
    pub now_us: u64,
    /// Monotonic stage sequence number (increments per `stage_begin` /
    /// `stage_skipped`), so pollers can detect stage transitions.
    pub seq: u64,
}

impl ProgressSnapshot {
    /// Items per second since the stage began, `0.0` before any time has
    /// passed.
    pub fn throughput_per_sec(&self) -> f64 {
        let elapsed_us = self.now_us.saturating_sub(self.started_us);
        if elapsed_us == 0 {
            0.0
        } else {
            self.done as f64 * 1_000_000.0 / elapsed_us as f64
        }
    }

    /// Estimated seconds until the stage completes, `None` when the total
    /// is unknown or nothing has been processed yet.
    pub fn eta_secs(&self) -> Option<f64> {
        if self.total == 0 || self.done == 0 {
            return None;
        }
        let remaining = self.total.saturating_sub(self.done);
        let rate = self.throughput_per_sec();
        (rate > 0.0).then(|| remaining as f64 / rate)
    }
}

struct Inner {
    epoch: Instant,
    next_span: AtomicU64,
    state: Mutex<State>,
    progress: Mutex<ProgressState>,
}

thread_local! {
    /// The innermost active span on this thread (0 = none). Only parent
    /// *ids* flow through here; records always land in the guard's own
    /// recorder.
    static CURRENT: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Structured tracing + metrics sink. Cheap to clone (shared state).
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

// `Debug`/`PartialEq` care only about enablement: two enabled recorders
// compare equal even when their collected data differs, so a
// `PipelineConfig` carrying a recorder keeps its derived `PartialEq`
// meaning "same tunables".
impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.inner.is_some() {
            f.write_str("Recorder(enabled)")
        } else {
            f.write_str("Recorder(disabled)")
        }
    }
}

impl PartialEq for Recorder {
    fn eq(&self, other: &Recorder) -> bool {
        self.is_enabled() == other.is_enabled()
    }
}

impl Recorder {
    /// An enabled recorder with empty state.
    pub fn new() -> Recorder {
        Recorder {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                next_span: AtomicU64::new(1),
                state: Mutex::new(State::default()),
                progress: Mutex::new(ProgressState::default()),
            })),
        }
    }

    /// The no-op recorder: every call returns after one branch.
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// Whether observations are collected.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn now_us(inner: &Inner) -> u64 {
        inner.epoch.elapsed().as_micros() as u64
    }

    fn state(inner: &Inner) -> std::sync::MutexGuard<'_, State> {
        // Observability must never take the pipeline down: a panic while
        // the state lock was held loses nothing we cannot tolerate losing.
        inner.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Opens a span whose parent is the innermost active span on this
    /// thread (if any). Closed — and recorded — when the guard drops.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        let parent = CURRENT.with(|c| c.get());
        self.span_impl(
            name,
            if parent == 0 {
                None
            } else {
                Some(SpanId(parent))
            },
        )
    }

    /// Opens a span under an explicit parent — the cross-thread form:
    /// capture [`Recorder::current`] before spawning, pass it to workers.
    pub fn span_in(&self, parent: Option<SpanId>, name: &'static str) -> SpanGuard {
        self.span_impl(name, parent)
    }

    fn span_impl(&self, name: &'static str, parent: Option<SpanId>) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard {
                inner: None,
                id: 0,
                parent: None,
                prev: 0,
                name,
                fields: Vec::new(),
                start_us: 0,
            };
        };
        let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
        let prev = CURRENT.with(|c| c.replace(id));
        SpanGuard {
            inner: Some(Arc::clone(inner)),
            id,
            parent: parent.map(|p| p.0),
            prev,
            name,
            fields: Vec::new(),
            start_us: Self::now_us(inner),
        }
    }

    /// The innermost active span on this thread.
    pub fn current(&self) -> Option<SpanId> {
        self.inner.as_ref()?;
        let id = CURRENT.with(|c| c.get());
        (id != 0).then_some(SpanId(id))
    }

    /// Adds `delta` to a named monotonic counter.
    pub fn counter(&self, name: &'static str, delta: u64) {
        let Some(inner) = &self.inner else { return };
        if delta == 0 {
            return;
        }
        *Self::state(inner).counters.entry(name).or_insert(0) += delta;
    }

    /// Records one observation into a named log2 histogram.
    pub fn histogram(&self, name: &'static str, value: u64) {
        let Some(inner) = &self.inner else { return };
        Self::state(inner)
            .histograms
            .entry(name)
            .or_default()
            .record(value);
    }

    /// Merges a locally accumulated histogram (one lock for the batch).
    pub fn histogram_merge(&self, name: &'static str, local: &Histogram) {
        let Some(inner) = &self.inner else { return };
        if local.count == 0 {
            return;
        }
        Self::state(inner)
            .histograms
            .entry(name)
            .or_default()
            .merge(local);
    }

    fn progress_state(inner: &Inner) -> std::sync::MutexGuard<'_, ProgressState> {
        inner.progress.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Declares that a stage has started executing, with `total` expected
    /// items (`0` when unknown). Called once per stage — not a hot path.
    pub fn stage_begin(&self, stage: &'static str, total: u64) {
        let Some(inner) = &self.inner else { return };
        let now = Self::now_us(inner);
        let mut p = Self::progress_state(inner);
        p.stage = Some(stage);
        p.done = 0;
        p.total = total;
        p.skipped = false;
        p.started_us = now;
        p.seq += 1;
    }

    /// Declares that a stage was restored from a checkpoint instead of
    /// executed, so live renderers can show it as skipped.
    pub fn stage_skipped(&self, stage: &'static str) {
        let Some(inner) = &self.inner else { return };
        let now = Self::now_us(inner);
        let mut p = Self::progress_state(inner);
        p.stage = Some(stage);
        p.done = 0;
        p.total = 0;
        p.skipped = true;
        p.started_us = now;
        p.seq += 1;
        p.skipped_log.push(stage);
    }

    /// Every stage declared skipped so far, in order. Empty when the
    /// recorder is disabled. Bounded by the pipeline's stage count, so
    /// cloning is cheap.
    pub fn skipped_stages(&self) -> Vec<&'static str> {
        match &self.inner {
            Some(inner) => Self::progress_state(inner).skipped_log.clone(),
            None => Vec::new(),
        }
    }

    /// Adds `n` processed items to the current stage's gauge. Called per
    /// shard completion (a handful of times per stage), not per record.
    pub fn stage_add_items(&self, n: u64) {
        let Some(inner) = &self.inner else { return };
        if n == 0 {
            return;
        }
        Self::progress_state(inner).done += n;
    }

    /// Snapshot of the current stage's progress. `None` when the recorder
    /// is disabled or no stage has begun yet.
    pub fn progress(&self) -> Option<ProgressSnapshot> {
        let inner = self.inner.as_ref()?;
        let now_us = Self::now_us(inner);
        let p = Self::progress_state(inner);
        Some(ProgressSnapshot {
            stage: p.stage?,
            done: p.done,
            total: p.total,
            skipped: p.skipped,
            started_us: p.started_us,
            now_us,
            seq: p.seq,
        })
    }

    /// Records a diagnostic warning into the event stream.
    pub fn warning(&self, message: impl Into<String>) {
        let Some(inner) = &self.inner else { return };
        let at_us = Self::now_us(inner);
        Self::state(inner).warnings.push(WarningRecord {
            at_us,
            message: message.into(),
        });
    }

    /// Snapshot of all completed spans, in completion order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        match &self.inner {
            Some(inner) => Self::state(inner).spans.clone(),
            None => Vec::new(),
        }
    }

    /// Snapshot of the counters.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        match &self.inner {
            Some(inner) => Self::state(inner)
                .counters
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            None => BTreeMap::new(),
        }
    }

    /// Snapshot of the histograms.
    pub fn histograms(&self) -> BTreeMap<String, Histogram> {
        match &self.inner {
            Some(inner) => Self::state(inner)
                .histograms
                .iter()
                .map(|(&k, v)| (k.to_string(), v.clone()))
                .collect(),
            None => BTreeMap::new(),
        }
    }

    /// Snapshot of the warnings.
    pub fn warnings(&self) -> Vec<WarningRecord> {
        match &self.inner {
            Some(inner) => Self::state(inner).warnings.clone(),
            None => Vec::new(),
        }
    }

    /// Writes the full event stream as NDJSON: one `meta` line, one line
    /// per span (completion order), per warning, per counter, and per
    /// histogram. Every line is a complete JSON object (see the schema
    /// table in DESIGN.md).
    pub fn write_events(&self, w: &mut dyn std::io::Write) -> std::io::Result<()> {
        let meta = Json::obj(vec![
            ("type", Json::from("meta")),
            ("schema", Json::U64(1)),
            ("clock", Json::from("us_since_recorder_epoch")),
            ("enabled", Json::Bool(self.is_enabled())),
        ]);
        writeln!(w, "{}", meta.render())?;
        for s in self.spans() {
            let fields = Json::Obj(
                s.fields
                    .iter()
                    .map(|(k, v)| {
                        let jv = match v {
                            FieldValue::U64(n) => Json::U64(*n),
                            FieldValue::Str(t) => Json::Str(t.clone()),
                        };
                        (k.to_string(), jv)
                    })
                    .collect(),
            );
            let line = Json::obj(vec![
                ("type", Json::from("span")),
                ("id", Json::U64(s.id)),
                ("parent", s.parent.map(Json::U64).unwrap_or(Json::Null)),
                ("name", Json::from(s.name)),
                ("start_us", Json::U64(s.start_us)),
                ("dur_us", Json::U64(s.dur_us)),
                ("fields", fields),
            ]);
            writeln!(w, "{}", line.render())?;
        }
        for warning in self.warnings() {
            let line = Json::obj(vec![
                ("type", Json::from("warning")),
                ("at_us", Json::U64(warning.at_us)),
                ("message", Json::Str(warning.message)),
            ]);
            writeln!(w, "{}", line.render())?;
        }
        for (name, value) in self.counters() {
            let line = Json::obj(vec![
                ("type", Json::from("counter")),
                ("name", Json::Str(name)),
                ("value", Json::U64(value)),
            ]);
            writeln!(w, "{}", line.render())?;
        }
        for (name, h) in self.histograms() {
            let mut pairs = vec![
                ("type".to_string(), Json::from("histogram")),
                ("name".to_string(), Json::Str(name)),
            ];
            if let Json::Obj(hp) = h.to_json() {
                pairs.extend(hp);
            }
            writeln!(w, "{}", Json::Obj(pairs).render())?;
        }
        Ok(())
    }
}

/// RAII guard of an open span; records the span when dropped.
pub struct SpanGuard {
    inner: Option<Arc<Inner>>,
    id: u64,
    parent: Option<u64>,
    prev: u64,
    name: &'static str,
    fields: Vec<(&'static str, FieldValue)>,
    start_us: u64,
}

impl SpanGuard {
    /// Attaches a field to the span.
    pub fn field(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if self.inner.is_some() {
            self.fields.push((key, value.into()));
        }
    }

    /// The span's id, for parenting work handed to other threads.
    /// `None` when the recorder is disabled.
    pub fn id(&self) -> Option<SpanId> {
        self.inner.as_ref().map(|_| SpanId(self.id))
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        CURRENT.with(|c| c.set(self.prev));
        let end = Recorder::now_us(&inner);
        let record = SpanRecord {
            id: self.id,
            parent: self.parent,
            name: self.name,
            fields: std::mem::take(&mut self.fields),
            start_us: self.start_us,
            dur_us: end.saturating_sub(self.start_us),
        };
        Recorder::state(&inner).spans.push(record);
    }
}

/// Opens a span on a recorder with optional `key = value` fields:
/// `span!(rec, "parse.shard", shard = i, items = n)`. Returns the
/// [`SpanGuard`]; bind it (`let _span = …`) so it lives for the region.
#[macro_export]
macro_rules! span {
    ($rec:expr, $name:expr $(, $key:ident = $value:expr)* $(,)?) => {{
        #[allow(unused_mut)]
        let mut guard = $rec.span($name);
        $( guard.field(stringify!($key), $value); )*
        guard
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_collects_nothing() {
        let rec = Recorder::disabled();
        {
            let mut g = span!(rec, "root", k = 1u64);
            g.field("more", "x");
            assert_eq!(g.id(), None);
        }
        rec.counter("c", 5);
        rec.histogram("h", 1);
        rec.warning("w");
        assert!(rec.spans().is_empty());
        assert!(rec.counters().is_empty());
        assert!(rec.histograms().is_empty());
        assert!(rec.warnings().is_empty());
        assert_eq!(rec.current(), None);
    }

    #[test]
    fn same_thread_nesting() {
        let rec = Recorder::new();
        {
            let root = span!(rec, "root");
            let root_id = root.id().unwrap();
            {
                let child = span!(rec, "child");
                assert_eq!(rec.current(), child.id());
                let _grand = span!(rec, "grandchild");
            }
            assert_eq!(rec.current(), Some(root_id));
        }
        let spans = rec.spans();
        assert_eq!(spans.len(), 3);
        // Completion order: innermost first.
        assert_eq!(spans[0].name, "grandchild");
        assert_eq!(spans[1].name, "child");
        assert_eq!(spans[2].name, "root");
        assert_eq!(spans[0].parent, Some(spans[1].id));
        assert_eq!(spans[1].parent, Some(spans[2].id));
        assert_eq!(spans[2].parent, None);
    }

    #[test]
    fn cross_thread_parenting_via_span_in() {
        let rec = Recorder::new();
        let stage = rec.span("stage");
        let stage_id = stage.id();
        std::thread::scope(|s| {
            for i in 0..3u64 {
                let rec = rec.clone();
                s.spawn(move || {
                    let mut g = rec.span_in(stage_id, "stage.shard");
                    g.field("shard", i);
                });
            }
        });
        drop(stage);
        let spans = rec.spans();
        let stage_rec = spans.iter().find(|s| s.name == "stage").unwrap();
        let shards: Vec<_> = spans.iter().filter(|s| s.name == "stage.shard").collect();
        assert_eq!(shards.len(), 3);
        for s in shards {
            assert_eq!(s.parent, Some(stage_rec.id));
        }
    }

    #[test]
    fn counters_and_histograms_accumulate() {
        let rec = Recorder::new();
        rec.counter("parsed", 2);
        rec.counter("parsed", 3);
        rec.counter("zero", 0); // no-op: absent from the snapshot
        rec.histogram("lat", 3);
        rec.histogram("lat", 100);
        let counters = rec.counters();
        assert_eq!(counters.get("parsed"), Some(&5));
        assert!(!counters.contains_key("zero"));
        assert_eq!(rec.histograms()["lat"].count, 2);
    }

    #[test]
    fn events_are_valid_ndjson() {
        let rec = Recorder::new();
        {
            let mut g = span!(rec, "work", shard = 1u64);
            g.field("label", "q\"uote");
        }
        rec.counter("n", 7);
        rec.histogram("h", 42);
        rec.warning("something\nodd");
        let mut buf = Vec::new();
        rec.write_events(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 5, "{text}");
        for line in &lines {
            let v = Json::parse(line).expect(line);
            assert!(v.get("type").is_some(), "{line}");
        }
        assert_eq!(
            Json::parse(lines[0]).unwrap().get("type").unwrap().as_str(),
            Some("meta")
        );
    }

    #[test]
    fn progress_gauge_tracks_the_current_stage() {
        let rec = Recorder::new();
        assert_eq!(rec.progress(), None, "no stage begun yet");

        rec.stage_begin("parse", 100);
        rec.stage_add_items(30);
        rec.stage_add_items(20);
        rec.stage_add_items(0); // no-op
        let p = rec.progress().unwrap();
        assert_eq!(p.stage, "parse");
        assert_eq!((p.done, p.total, p.skipped), (50, 100, false));
        assert_eq!(p.seq, 1);
        assert!(p.now_us >= p.started_us);

        // A new stage resets the gauge and bumps the sequence.
        rec.stage_begin("sessions", 0);
        let p = rec.progress().unwrap();
        assert_eq!((p.stage, p.done, p.total, p.seq), ("sessions", 0, 0, 2));
        assert_eq!(p.eta_secs(), None, "unknown total has no ETA");

        // Checkpoint-restored stages render as skipped, and stay visible
        // in the skipped log even after later stages overwrite the gauge.
        rec.stage_skipped("mine");
        let p = rec.progress().unwrap();
        assert_eq!((p.stage, p.skipped, p.seq), ("mine", true, 3));
        rec.stage_skipped("detect");
        rec.stage_begin("solve", 5);
        assert_eq!(rec.skipped_stages(), vec!["mine", "detect"]);

        // Disabled recorders expose nothing and every call is a no-op.
        let off = Recorder::disabled();
        off.stage_begin("parse", 10);
        off.stage_add_items(5);
        off.stage_skipped("sort");
        assert_eq!(off.progress(), None);
        assert!(off.skipped_stages().is_empty());
    }

    #[test]
    fn progress_derived_rates() {
        let snap = ProgressSnapshot {
            stage: "parse",
            done: 500,
            total: 1000,
            skipped: false,
            started_us: 0,
            now_us: 1_000_000, // 1 s elapsed
            seq: 1,
        };
        assert!((snap.throughput_per_sec() - 500.0).abs() < 1e-9);
        assert!((snap.eta_secs().unwrap() - 1.0).abs() < 1e-9);

        let stalled = ProgressSnapshot {
            done: 0,
            ..snap.clone()
        };
        assert_eq!(stalled.throughput_per_sec(), 0.0);
        assert_eq!(stalled.eta_secs(), None);
    }

    #[test]
    fn clones_share_state() {
        let rec = Recorder::new();
        let clone = rec.clone();
        clone.counter("shared", 1);
        assert_eq!(rec.counters().get("shared"), Some(&1));
        assert_eq!(rec, clone);
        assert_ne!(rec, Recorder::disabled());
        assert_eq!(format!("{:?}", Recorder::disabled()), "Recorder(disabled)");
    }
}
