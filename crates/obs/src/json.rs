//! A minimal JSON value model with a compact writer and a strict parser.
//!
//! The vendored `serde` is a no-op stand-in (nothing in the offline tree can
//! actually serialize), so the observability layer carries its own JSON
//! support. Design points:
//!
//! * **Exact integers.** `u64`/`i64` are kept as integers, never routed
//!   through `f64` — histogram bucket bounds go up to `u64::MAX` and must
//!   round-trip bit-exactly.
//! * **Ordered objects.** Objects are association vectors, so rendering is
//!   deterministic (insertion order) and `parse(render(v)) == v`.
//! * **Strictness.** The parser rejects trailing garbage, unterminated
//!   strings, and nesting deeper than [`MAX_DEPTH`] — NDJSON validation
//!   feeds it untrusted lines.

use std::fmt::Write as _;

/// Maximum nesting depth the parser will follow.
pub const MAX_DEPTH: usize = 128;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (also the parse of any unsigned literal).
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A number with a fraction or exponent.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: ordered key/value pairs (keys unique by construction).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on an object (`None` on other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64` (integers only; no float coercion).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            Json::I64(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The value as `f64` (accepts any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            Json::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as object pairs.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Renders the value as compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    // `{}` on f64 is shortest-round-trip in Rust; force a
                    // fraction so the parse comes back as F64.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        let _ = write!(out, "{v:.1}");
                    } else {
                        let _ = write!(out, "{v}");
                    }
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf.
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Renders the value as indented multi-line JSON (two-space indent).
    /// Used for committed fixtures, where line-oriented diffs must stay
    /// readable.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.render_pretty_into(&mut out, 0);
        out
    }

    fn render_pretty_into(&self, out: &mut String, depth: usize) {
        let indent = |out: &mut String, depth: usize| {
            for _ in 0..depth {
                out.push_str("  ");
            }
        };
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.render_pretty_into(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    render_string(k, out);
                    out.push_str(": ");
                    v.render_pretty_into(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.render_into(out),
        }
    }

    /// Parses one complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U64(v as u64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs: Vec<(String, Json)> = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.value(depth + 1)?;
                    if pairs.iter().any(|(k, _)| *k == key) {
                        return Err(self.err(&format!("duplicate key {key:?}")));
                    }
                    pairs.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(pairs));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid code point")),
                            }
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                0x00..=0x1F => return Err(self.err("control character in string")),
                _ => {
                    // Copy one UTF-8 scalar (input is &str, so boundaries
                    // are valid by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let d = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a') as u32 + 10,
                b'A'..=b'F' => (b - b'A') as u32 + 10,
                _ => return Err(self.err("bad hex digit")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii digits are valid utf-8");
        if !is_float {
            if let Some(rest) = text.strip_prefix('-') {
                // Parse the magnitude, negate: covers i64::MIN too.
                if rest.parse::<u64>().is_ok() {
                    if let Ok(v) = text.parse::<i64>() {
                        return Ok(Json::I64(v));
                    }
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
        }
        text.parse::<f64>().map(Json::F64).map_err(|_| JsonError {
            offset: start,
            message: format!("bad number {text:?}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_render_parses_back_and_is_line_oriented() {
        let v = Json::obj(vec![
            ("name", Json::Str("scan".into())),
            ("rows", Json::U64(3)),
            ("keys", Json::Arr(vec![Json::I64(-1), Json::U64(2)])),
            ("empty_obj", Json::Obj(vec![])),
            ("empty_arr", Json::Arr(vec![])),
        ]);
        let pretty = v.render_pretty();
        assert_eq!(Json::parse(&pretty).unwrap(), v);
        assert!(pretty.contains("\n  \"rows\": 3"), "{pretty}");
        assert!(pretty.contains("\"empty_obj\": {}"), "{pretty}");
        // Every key/value sits on its own line for diffable fixtures.
        assert!(pretty.lines().count() >= 8, "{pretty}");
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::U64(0),
            Json::U64(u64::MAX),
            Json::I64(-1),
            Json::I64(i64::MIN),
            Json::F64(1.5),
            Json::F64(-0.25),
            Json::Str("he\"llo\n\\ käse \u{1}".to_string()),
        ] {
            let text = v.render();
            assert_eq!(Json::parse(&text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn u64_max_is_exact() {
        let text = Json::U64(u64::MAX).render();
        assert_eq!(text, "18446744073709551615");
        assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn containers_round_trip() {
        let v = Json::obj(vec![
            ("a", Json::Arr(vec![Json::U64(1), Json::Null])),
            ("b", Json::obj(vec![("nested", Json::Str("x".into()))])),
        ]);
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
        assert_eq!(
            v.get("b")
                .and_then(|b| b.get("nested"))
                .and_then(Json::as_str),
            Some("x")
        );
    }

    #[test]
    fn whitespace_and_escapes_parse() {
        let v = Json::parse(" { \"k\" : [ 1 , \"\\u00e9\\ud83d\\ude00\" ] } ").unwrap();
        assert_eq!(
            v.get("k").unwrap().as_arr().unwrap()[1].as_str(),
            Some("é😀")
        );
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":1,}",
            "1 2",
            "\"unterminated",
            "{\"a\":1,\"a\":2}",
            "nul",
            "--1",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn float_render_parses_back_as_float() {
        let v = Json::F64(2.0);
        assert_eq!(v.render(), "2.0");
        assert_eq!(Json::parse("2.0").unwrap(), v);
        assert_eq!(Json::parse("1e3").unwrap(), Json::F64(1000.0));
    }

    #[test]
    fn nan_renders_null() {
        assert_eq!(Json::F64(f64::NAN).render(), "null");
    }
}
