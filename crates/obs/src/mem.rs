//! Process memory accounting.
//!
//! The bounded-memory goal (ROADMAP item 2) needs a measurement side
//! before it can have an enforcement side. On Linux the kernel already
//! tracks exactly what we want in `/proc/self/status`: `VmRSS` (current
//! resident set) and `VmHWM` (the high-water mark — peak RSS since the
//! process started, maintained by the kernel with no sampling thread on
//! our side). Elsewhere these return `None` and callers degrade to "not
//! measured" rather than a misleading zero.

/// Peak resident-set size of this process in bytes (`VmHWM`), or `None`
/// where the measurement is unavailable (non-Linux, or an unreadable or
/// unparseable `/proc/self/status`).
pub fn peak_rss_bytes() -> Option<u64> {
    proc_status_kib("VmHWM:").map(|kib| kib * 1024)
}

/// Current resident-set size of this process in bytes (`VmRSS`), or
/// `None` where unavailable.
pub fn current_rss_bytes() -> Option<u64> {
    proc_status_kib("VmRSS:").map(|kib| kib * 1024)
}

/// Reads one `kB` field from `/proc/self/status`. The file is small
/// (a few hundred bytes) and procfs reads don't touch disk, so this is
/// cheap enough to call once per run — it is *not* meant for per-record
/// hot paths.
#[cfg(target_os = "linux")]
fn proc_status_kib(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix(field) {
            // Format: "VmHWM:\t   12345 kB"
            return rest.trim().trim_end_matches("kB").trim().parse().ok();
        }
    }
    None
}

#[cfg(not(target_os = "linux"))]
fn proc_status_kib(_field: &str) -> Option<u64> {
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn rss_is_measured_on_linux() {
        let peak = peak_rss_bytes().expect("VmHWM readable on Linux");
        let current = current_rss_bytes().expect("VmRSS readable on Linux");
        // A running test process certainly resides in more than a page and
        // (sanity bound) less than a terabyte.
        assert!(peak > 4096, "peak {peak}");
        assert!(current > 4096, "current {current}");
        assert!(peak < 1 << 40, "peak {peak}");
        // The high-water mark can never be below the current RSS reading
        // taken before it... but the two reads race, so allow equality-ish
        // by only requiring peak to be within the same order of magnitude.
        assert!(peak * 16 >= current, "peak {peak} vs current {current}");
    }

    #[test]
    #[cfg(not(target_os = "linux"))]
    fn rss_degrades_to_none_elsewhere() {
        assert_eq!(peak_rss_bytes(), None);
        assert_eq!(current_rss_bytes(), None);
    }
}
