//! # sqlog-obs — structured tracing + metrics for the cleaning pipeline
//!
//! A from-scratch observability layer (the vendor tree is offline: no
//! `tracing`, no `prometheus`, no `serde_json`) built around one type:
//!
//! * [`Recorder`] — **spans** with monotonic timing and parent/child
//!   nesting (thread-local on one thread, explicit-parent across shard
//!   workers), **counters**, and log2-bucket **histograms**. A
//!   [`Recorder::disabled`] recorder is a no-op: every call is one branch
//!   on an `Option` and an immediate return, cheap enough to leave the
//!   instrumentation permanently wired through the hot paths.
//! * [`ObsReport`] — the aggregated, machine-readable view: per-stage /
//!   per-shard timings, an imbalance factor, counter totals, histograms.
//! * [`Json`] — a minimal exact-integer JSON model with writer *and*
//!   parser, used for the NDJSON event export
//!   ([`Recorder::write_events`]), the `--stats-json` run report, and the
//!   round-trip tests.
//!
//! ```
//! use sqlog_obs::{span, ObsReport, Recorder};
//!
//! let rec = Recorder::new();
//! {
//!     let stage = span!(rec, "parse");
//!     let parent = stage.id();
//!     // hand `parent` to worker threads:
//!     let _shard = rec.span_in(parent, "parse.shard");
//! }
//! rec.counter("parse.selects", 42);
//! rec.histogram("parse.shard_us", 1280);
//! let report = ObsReport::from_recorder(&rec);
//! assert_eq!(report.counters["parse.selects"], 42);
//! assert_eq!(report.stages["parse"].shards.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod histogram;
pub mod json;
pub mod ledger;
pub mod mem;
pub mod recorder;
pub mod report;

pub use histogram::{bucket_bounds, bucket_of, Histogram, BUCKETS};
pub use json::{Json, JsonError};
pub use ledger::{Ledger, LedgerEntry, MachineInfo, LEDGER_SCHEMA};
pub use recorder::{
    FieldValue, ProgressSnapshot, Recorder, SpanGuard, SpanId, SpanRecord, WarningRecord,
};
pub use report::{ObsReport, ShardTiming, StageSummary};
