//! The differential matrix: one log, every execution configuration,
//! byte-identical output.
//!
//! The pipeline promises that thread count, the parse cache and the
//! ingestion policy are *pure* execution knobs — none of them may change
//! what comes out. The matrix serializes the generated log to its TSV wire
//! form, re-ingests it under every combination of
//! `threads {1, 2, 8, auto}` × `{cache, no-cache}` ×
//! `{strict, lenient, lenient-over-hostile-bytes}`, runs the full pipeline,
//! and diffs a byte digest (clean log ‖ removal log ‖ stable statistics)
//! against the reference leg.
//!
//! The hostile leg appends deliberately unreadable lines (structural
//! damage, invalid UTF-8) to the wire bytes; lenient ingestion must
//! quarantine exactly those lines and leave the surviving log — and thus
//! every downstream byte — untouched.
//!
//! A final **resumed leg** covers the crash-recovery promise: the same
//! input run through the checkpointing driver, interrupted after the mine
//! stage, and resumed at a *different* thread count must still match the
//! reference digest byte for byte.

use sqlog_catalog::Catalog;
use sqlog_core::checkpoint::{run_checkpointed, CheckpointOptions, RunDir, Stage};
use sqlog_core::{Pipeline, PipelineConfig, PipelineResult, Statistics};
use sqlog_log::{read_log_with, write_log, IngestPolicy, QueryLog};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Thread counts exercised by the matrix (0 = auto).
pub const THREAD_COUNTS: &[usize] = &[1, 2, 8, 0];

/// Unreadable lines injected into the hostile leg. Each one must be
/// rejected by the TSV reader: wrong field count, malformed numeric
/// fields, or invalid UTF-8.
pub const HOSTILE_LINES: &[&[u8]] = &[
    b"not a log line\n",
    b"\xff\xfe broken \xf0 utf8\tline\tx\ty\tz\tw\tv\n",
    b"42\tnot-a-timestamp\tu\t\t\t\tSELECT 1\n",
    b"7\t7000\tu\n",
];

/// Outcome of the matrix.
#[derive(Debug, Clone, Default)]
pub struct DifferentialReport {
    /// Pipeline runs executed (reference leg included).
    pub legs: usize,
    /// Hostile lines injected into the lenient-over-hostile-bytes leg.
    pub hostile_lines: usize,
    /// Entries of the reference ingest (every leg must agree).
    pub entries: usize,
    /// Human-readable description of every disagreeing leg (empty = pass).
    pub mismatches: Vec<String>,
}

impl DifferentialReport {
    /// Did every leg match the reference byte-for-byte?
    pub fn passed(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// The three ingestion variants of the matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IngestLeg {
    StrictClean,
    LenientClean,
    LenientHostile,
}

impl IngestLeg {
    fn label(self) -> &'static str {
        match self {
            IngestLeg::StrictClean => "strict",
            IngestLeg::LenientClean => "lenient",
            IngestLeg::LenientHostile => "lenient+hostile",
        }
    }
}

/// Serializes a log to its TSV wire bytes.
pub fn wire_bytes(log: &QueryLog) -> Vec<u8> {
    let mut out = Vec::new();
    write_log(log, &mut out).expect("serialize log to memory");
    out
}

/// Interleaves the hostile lines into clean wire bytes at deterministic
/// positions: one garbage line before everything, then one after every
/// 97th log line, cycling through [`HOSTILE_LINES`]. Returns the bytes and
/// the number of injected lines.
pub fn inject_hostile(clean: &[u8]) -> (Vec<u8>, usize) {
    let mut out = Vec::with_capacity(clean.len() + 64);
    let mut injected = 0usize;
    let mut next = || {
        let line = HOSTILE_LINES[injected % HOSTILE_LINES.len()];
        injected += 1;
        line
    };
    out.extend_from_slice(next());
    for (i, line) in clean.split_inclusive(|&b| b == b'\n').enumerate() {
        out.extend_from_slice(line);
        if i % 97 == 96 {
            out.extend_from_slice(next());
        }
    }
    (out, injected)
}

/// The stable part of [`Statistics`]: every semantic count, none of the
/// timing or cache-counter rows (those legitimately differ between legs).
pub fn stable_stats(s: &Statistics) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "orig={} dup={} after={} sel={} err={} nonsel={} final={} removal={} \
         patterns={} maxfreq={} solved={} solvedq={} rewritten={} overlaps={} \
         limit={} poison={}/{}",
        s.original_size,
        s.duplicates_removed,
        s.after_dedup,
        s.select_count,
        s.syntax_errors,
        s.non_select,
        s.final_size,
        s.removal_size,
        s.pattern_count,
        s.max_pattern_frequency,
        s.solved_instances,
        s.solved_queries,
        s.rewritten_statements,
        s.skipped_overlaps,
        s.run_health.limit_rejected,
        s.run_health.poison_records,
        s.run_health.poison_sessions,
    );
    for (class, c) in &s.per_class {
        let _ = write!(
            out,
            " {}={}i/{}q/{}d",
            class, c.instances, c.queries, c.distinct
        );
    }
    out
}

/// The byte digest a leg is compared on: clean log ‖ removal log ‖ stable
/// statistics, separated by a byte that cannot occur in the TSV form.
pub fn digest(result: &PipelineResult) -> Vec<u8> {
    let mut out = wire_bytes(&result.clean_log);
    out.push(0x1f);
    out.extend_from_slice(&wire_bytes(&result.removal_log));
    out.push(0x1f);
    out.extend_from_slice(stable_stats(&result.stats).as_bytes());
    out
}

fn pipeline_config(threads: usize, cache: bool) -> PipelineConfig {
    PipelineConfig {
        parallelism: threads,
        parse_cache: cache,
        ..PipelineConfig::default()
    }
}

/// Runs the full matrix over a log. Returns the reference run's
/// [`PipelineResult`] (strict ingest, threads = 1, cache on) for reuse by
/// the oracle and recall scoring, plus the report.
pub fn run_matrix(log: &QueryLog, catalog: &Catalog) -> (PipelineResult, DifferentialReport) {
    let clean_bytes = wire_bytes(log);
    let (hostile_bytes, hostile_lines) = inject_hostile(&clean_bytes);

    let mut report = DifferentialReport {
        hostile_lines,
        ..DifferentialReport::default()
    };

    let mut reference: Option<(Vec<u8>, PipelineResult)> = None;
    for leg in [
        IngestLeg::StrictClean,
        IngestLeg::LenientClean,
        IngestLeg::LenientHostile,
    ] {
        let (bytes, policy, expect_quarantined) = match leg {
            IngestLeg::StrictClean => (&clean_bytes, IngestPolicy::Strict, 0),
            IngestLeg::LenientClean => (&clean_bytes, IngestPolicy::Lenient, 0),
            IngestLeg::LenientHostile => (&hostile_bytes, IngestPolicy::Lenient, hostile_lines),
        };
        let (ingested, stats) =
            match read_log_with(std::io::Cursor::new(bytes.as_slice()), policy, None) {
                Ok(r) => r,
                Err(e) => {
                    report
                        .mismatches
                        .push(format!("{}: ingest failed: {e}", leg.label()));
                    continue;
                }
            };
        if stats.quarantined != expect_quarantined {
            report.mismatches.push(format!(
                "{}: quarantined {} lines, expected {expect_quarantined}",
                leg.label(),
                stats.quarantined
            ));
        }
        if ingested.len() != log.len() {
            report.mismatches.push(format!(
                "{}: ingested {} entries, expected {}",
                leg.label(),
                ingested.len(),
                log.len()
            ));
            continue;
        }
        for &threads in THREAD_COUNTS {
            for cache in [true, false] {
                let result = Pipeline::new(catalog)
                    .with_config(pipeline_config(threads, cache))
                    .run(&ingested);
                report.legs += 1;
                let d = digest(&result);
                match &reference {
                    None => {
                        report.entries = ingested.len();
                        reference = Some((d, result));
                    }
                    Some((ref_digest, _)) => {
                        if d != *ref_digest {
                            let at = d
                                .iter()
                                .zip(ref_digest.iter())
                                .position(|(a, b)| a != b)
                                .unwrap_or_else(|| d.len().min(ref_digest.len()));
                            report.mismatches.push(format!(
                                "{} threads={threads} cache={cache}: output diverges \
                                 from reference at byte {at}",
                                leg.label()
                            ));
                        }
                    }
                }
            }
        }
    }

    let (ref_digest, reference) = reference.expect("at least the reference leg ran");
    run_resumed_leg(&clean_bytes, catalog, &ref_digest, &mut report);
    (reference, report)
}

/// The interrupted-and-resumed leg: checkpoint the run into a scratch run
/// directory, stop after the mine stage (a clean stand-in for a crash at
/// that boundary), then resume at a different thread count. The resumed
/// result must match the reference digest exactly; `interruptions` is the
/// only run-health field allowed to differ, and the digest ignores it by
/// construction (an interruption is not a semantic outcome).
fn run_resumed_leg(
    clean_bytes: &[u8],
    catalog: &Catalog,
    ref_digest: &[u8],
    report: &mut DifferentialReport,
) {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let scratch = std::env::temp_dir().join(format!(
        "sqlog-conf-resume-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let fail = |report: &mut DifferentialReport, msg: String| {
        report.mismatches.push(format!("resumed: {msg}"));
    };
    if let Err(e) = std::fs::create_dir_all(&scratch) {
        return fail(report, format!("cannot create scratch dir: {e}"));
    }
    let input = scratch.join("input.tsv");
    let outcome = (|| -> Result<_, String> {
        std::fs::write(&input, clean_bytes).map_err(|e| format!("cannot write input: {e}"))?;
        let dir = RunDir::create(scratch.join("rundir"))?;
        let opts = |resume: bool, stop_after: Option<Stage>| CheckpointOptions {
            input: input.clone(),
            policy: IngestPolicy::Strict,
            quarantine: None,
            resume,
            stop_after,
        };
        // Interrupt a 2-thread run after mine; resume with 8 threads.
        let two = Pipeline::new(catalog).with_config(pipeline_config(2, true));
        run_checkpointed(&two, &dir, &opts(false, Some(Stage::Mine)))?;
        let eight = Pipeline::new(catalog).with_config(pipeline_config(8, true));
        run_checkpointed(&eight, &dir, &opts(true, None))?
            .ok_or_else(|| "resumed run did not complete".to_string())
    })();
    match outcome {
        Err(e) => fail(report, e),
        Ok(outcome) => {
            report.legs += 1;
            if !outcome.warnings.is_empty() {
                fail(
                    report,
                    format!("unexpected warnings: {:?}", outcome.warnings),
                );
            }
            if outcome.result.stats.run_health.interruptions != 1 {
                fail(
                    report,
                    format!(
                        "expected 1 recorded interruption, got {}",
                        outcome.result.stats.run_health.interruptions
                    ),
                );
            }
            let d = digest(&outcome.result);
            if d != ref_digest {
                let at = d
                    .iter()
                    .zip(ref_digest.iter())
                    .position(|(a, b)| a != b)
                    .unwrap_or_else(|| d.len().min(ref_digest.len()));
                fail(
                    report,
                    format!("output diverges from reference at byte {at}"),
                );
            }
        }
    }
    let _ = std::fs::remove_dir_all(&scratch);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlog_catalog::skyserver_catalog;
    use sqlog_log::{LogEntry, Timestamp};

    fn small_log() -> QueryLog {
        QueryLog::from_entries(
            [
                "SELECT name FROM Employee WHERE empId = 8",
                "SELECT name FROM Employee WHERE empId = 1",
                "SELECT * FROM photoprimary WHERE flags = NULL",
            ]
            .iter()
            .enumerate()
            .map(|(i, s)| {
                LogEntry::minimal(i as u64, *s, Timestamp::from_secs(i as i64)).with_user("u")
            })
            .collect(),
        )
    }

    #[test]
    fn hostile_lines_are_all_quarantined() {
        let bytes = wire_bytes(&small_log());
        let (hostile, n) = inject_hostile(&bytes);
        assert!(n >= 1);
        let (log, stats) = read_log_with(
            std::io::Cursor::new(hostile.as_slice()),
            IngestPolicy::Lenient,
            None,
        )
        .expect("lenient read survives");
        assert_eq!(stats.quarantined, n);
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn matrix_passes_on_a_small_log() {
        let catalog = skyserver_catalog();
        let (reference, report) = run_matrix(&small_log(), &catalog);
        assert!(report.passed(), "{:?}", report.mismatches);
        assert_eq!(report.legs, 25); // 24 matrix legs + the resumed leg
        assert!(reference.rewrites.len() >= 2); // DW pair + SNC
    }

    #[test]
    fn digest_detects_a_changed_clean_log() {
        let catalog = skyserver_catalog();
        let log = small_log();
        let a = Pipeline::new(&catalog).run(&log);
        let mut b = Pipeline::new(&catalog).run(&log);
        b.clean_log.entries[0].statement.push(' ');
        assert_ne!(digest(&a), digest(&b));
    }
}
