//! The semantic oracle: solver rewrites must preserve result sets.
//!
//! Every [`SolvedRewrite`] pair from the pipeline is executed against a
//! `sqlog-minidb` instance over generated SkyServer-like tables, with a
//! class-aware equivalence rule:
//!
//! * **DW-Stifle** — the merged `IN`-query, projected onto the originals'
//!   column list, must return exactly the multiset union of the original
//!   point queries' rows. (The rewrite may prepend the filter column; the
//!   solver deduplicates repeated constants, so the originals are
//!   deduplicated by statement text first.)
//! * **DS-Stifle** — for every original, the merged union-projection query
//!   restricted to that original's columns must equal its rows.
//! * **DF-Stifle** — for every original, the merged join projected onto
//!   that original's table-qualified columns must equal its rows.
//! * **SNC** — *intentionally not* result-equivalent: `col = NULL` /
//!   `col <> NULL` is never true under three-valued logic, so the original
//!   must return no rows and the `IS [NOT] NULL` rewrite must execute.
//!
//! Statements minidb cannot execute (features outside its SQL subset,
//! tables outside the generated schema) are counted as skipped, never as
//! passes; a rewrite that fails to execute while its originals ran is a
//! hard mismatch.
//!
//! With plan checks enabled ([`check_rewrites_with_plans`]), every
//! semantically-equivalent DW/DS/DF pair is additionally held to *plan*
//! properties of the cost-based planner:
//!
//! * the rewrite must plan an index seek (PkSeek / IndexSeek /
//!   IndexRangeSeek) whenever one was available — a rewrite that
//!   full-scans past a usable index is a planner regression;
//! * the rewrite's estimated plan cost must not exceed the summed plan
//!   costs of its distinct originals — merging never plans worse;
//! * originals that **full-scan under the naive reference executor** are
//!   counted ([`OracleReport::plan_full_scan_originals`]): those are the
//!   pairs where the planner turns the stifle run's repeated scans into a
//!   single seek, the §6.3 win surface.

use sqlog_core::{AntipatternClass, SolvedRewrite};
use sqlog_minidb::{ExecResult, MiniDb, QueryPlan, Value};

/// Outcome of the oracle over one run's rewrites.
#[derive(Debug, Clone, Default)]
pub struct OracleReport {
    /// Rewrite pairs examined.
    pub pairs: usize,
    /// Pairs proven result-set equivalent (or SNC-policy conformant).
    pub equivalent: usize,
    /// Pairs where at least one original returned rows — the pairs with
    /// actual discriminative power.
    pub nonempty: usize,
    /// Pairs skipped because minidb could not execute an original.
    pub skipped: usize,
    /// Human-readable description of every failed pair (empty = pass).
    pub mismatches: Vec<String>,
    /// Pairs whose plans were inspected (plan checks enabled, pair
    /// equivalent, class DW/DS/DF).
    pub plan_checked: usize,
    /// Rewrites that planned an index seek on their primary scan.
    pub plan_seeks: usize,
    /// Distinct originals that full-scanned under the naive reference
    /// executor while their pair's rewrite planned a seek.
    pub plan_full_scan_originals: usize,
    /// Plan-property violations (empty = pass).
    pub plan_failures: Vec<String>,
}

impl OracleReport {
    /// Did every executable pair check out, plans included?
    pub fn passed(&self) -> bool {
        self.mismatches.is_empty() && self.plan_failures.is_empty()
    }
}

/// Verdict for one rewrite pair.
enum Verdict {
    Equivalent { nonempty: bool },
    Skipped(#[allow(dead_code)] String),
    Mismatch(String),
}

/// Checks every rewrite pair against the database (result sets only).
pub fn check_rewrites(db: &MiniDb, rewrites: &[SolvedRewrite]) -> OracleReport {
    check_rewrites_with_plans(db, rewrites, false)
}

/// Checks every rewrite pair against the database, optionally holding the
/// equivalent DW/DS/DF pairs to the planner's plan properties as well.
pub fn check_rewrites_with_plans(
    db: &MiniDb,
    rewrites: &[SolvedRewrite],
    plan_checks: bool,
) -> OracleReport {
    let mut report = OracleReport::default();
    for rw in rewrites {
        report.pairs += 1;
        match check_one(db, rw) {
            Verdict::Equivalent { nonempty } => {
                report.equivalent += 1;
                if nonempty {
                    report.nonempty += 1;
                }
                if plan_checks && plan_checkable(&rw.class) {
                    check_plans(db, rw, &mut report);
                }
            }
            Verdict::Skipped(_) => report.skipped += 1,
            Verdict::Mismatch(why) => report.mismatches.push(format!(
                "{} [entries {:?}]: {why}",
                rw.class.label(),
                rw.entry_ids
            )),
        }
    }
    report
}

/// Plan properties only apply to the merge rewrites: SNC deliberately
/// changes semantics and carries no merged access path to inspect.
fn plan_checkable(class: &AntipatternClass) -> bool {
    matches!(
        class,
        AntipatternClass::DwStifle | AntipatternClass::DsStifle | AntipatternClass::DfStifle
    )
}

/// Plans a statement without executing it.
fn plan_of(db: &MiniDb, sql: &str) -> Result<QueryPlan, String> {
    let stmt = sqlog_sql::parse_statement(sql).map_err(|e| format!("{e}"))?;
    let q = stmt.as_select().ok_or_else(|| "not a SELECT".to_string())?;
    db.plan(q).map_err(|e| format!("{e:?}"))
}

/// Did the naive reference executor (the pre-planner behavior the paper's
/// clients actually got) full-scan this statement?
fn naive_full_scanned(db: &MiniDb, sql: &str) -> Option<bool> {
    let stmt = sqlog_sql::parse_statement(sql).ok()?;
    let q = stmt.as_select()?;
    db.execute_query_naive(q).ok().map(|r| !r.used_index)
}

/// Holds one equivalent pair to the planner's plan properties.
fn check_plans(db: &MiniDb, rw: &SolvedRewrite, report: &mut OracleReport) {
    let fail = |report: &mut OracleReport, why: String| {
        report.plan_failures.push(format!(
            "{} [entries {:?}]: {why}",
            rw.class.label(),
            rw.entry_ids
        ));
    };
    let Ok(merged_sql) = single_rewrite(rw) else {
        return; // already a mismatch shape; semantic check reported it
    };
    let plan = match plan_of(db, merged_sql) {
        Ok(p) => p,
        // The pair executed (it is equivalent), so an unplannable rewrite
        // is a planner bug, not a skip.
        Err(e) => return fail(report, format!("rewrite unplannable: {e}")),
    };
    report.plan_checked += 1;

    let seeks = plan
        .primary_scan()
        .is_some_and(|scan| scan.access.is_seek());
    if seeks {
        report.plan_seeks += 1;
    } else if plan.seek_was_available() {
        let chosen = plan
            .primary_scan()
            .map(|s| s.access.variant())
            .unwrap_or("none");
        return fail(
            report,
            format!(
                "rewrite planned {chosen} though an index seek was \
                 available: {merged_sql:?}"
            ),
        );
    }

    // Merging never plans worse: the rewrite's estimated cost must not
    // exceed the summed plan costs of its distinct originals.
    let mut seen: Vec<&String> = Vec::new();
    let mut originals_cost = 0.0;
    let mut full_scanned = 0usize;
    for sql in &rw.original_statements {
        if seen.contains(&sql) {
            continue;
        }
        seen.push(sql);
        match plan_of(db, sql) {
            Ok(p) => originals_cost += p.est_cost,
            // Originals executed; treat an unplannable one as a bug too.
            Err(e) => return fail(report, format!("original unplannable: {e}")),
        }
        if naive_full_scanned(db, sql) == Some(true) {
            full_scanned += 1;
        }
    }
    if seeks {
        report.plan_full_scan_originals += full_scanned;
    }
    if plan.est_cost > originals_cost + 1e-6 {
        fail(
            report,
            format!(
                "rewrite plan cost {:.3} exceeds the originals' summed plan \
                 cost {originals_cost:.3} ({} distinct originals)",
                plan.est_cost,
                seen.len()
            ),
        );
    }
}

fn check_one(db: &MiniDb, rw: &SolvedRewrite) -> Verdict {
    match rw.class {
        AntipatternClass::DwStifle => check_dw(db, rw),
        AntipatternClass::DsStifle | AntipatternClass::DfStifle => check_per_original(db, rw),
        AntipatternClass::Snc => check_snc(db, rw),
        _ => Verdict::Skipped(format!("no oracle rule for class {}", rw.class.label())),
    }
}

fn exec(db: &MiniDb, sql: &str) -> Result<ExecResult, String> {
    db.execute_sql(sql)
        .map(|(r, _cost)| r)
        .map_err(|e| format!("{e:?}"))
}

/// Canonical multiset key of a row set: one stable string per row, sorted.
fn row_keys(rows: &[Vec<Value>]) -> Vec<String> {
    let mut keys: Vec<String> = rows.iter().map(|row| format!("{row:?}")).collect();
    keys.sort();
    keys
}

/// Index of `want` in `columns`: exact case-insensitive match first, then a
/// unique match on the qualifier-stripped last segment.
fn col_index(columns: &[String], want: &str) -> Option<usize> {
    let norm = |s: &str| s.to_ascii_lowercase();
    let last = |s: &str| norm(s.rsplit('.').next().unwrap_or(s));
    if let Some(i) = columns.iter().position(|c| norm(c) == norm(want)) {
        return Some(i);
    }
    let want_last = last(want);
    let hits: Vec<usize> = columns
        .iter()
        .enumerate()
        .filter(|(_, c)| last(c) == want_last)
        .map(|(i, _)| i)
        .collect();
    match hits.as_slice() {
        [only] => Some(*only),
        _ => None,
    }
}

/// Projects a result onto a column-name list (names from another result).
fn project(result: &ExecResult, columns: &[String]) -> Result<Vec<Vec<Value>>, String> {
    let mut idx = Vec::with_capacity(columns.len());
    for want in columns {
        idx.push(col_index(&result.columns, want).ok_or_else(|| {
            format!(
                "column {want:?} not found in rewritten projection {:?}",
                result.columns
            )
        })?);
    }
    Ok(result
        .rows
        .iter()
        .map(|row| idx.iter().map(|&i| row[i].clone()).collect())
        .collect())
}

fn single_rewrite(rw: &SolvedRewrite) -> Result<&str, String> {
    match rw.rewritten_statements.as_slice() {
        [only] => Ok(only),
        other => Err(format!(
            "expected one rewritten statement, got {}",
            other.len()
        )),
    }
}

/// DW: multiset union of the (text-deduplicated) originals == the merged
/// query projected onto the originals' columns.
fn check_dw(db: &MiniDb, rw: &SolvedRewrite) -> Verdict {
    let merged_sql = match single_rewrite(rw) {
        Ok(s) => s,
        Err(e) => return Verdict::Mismatch(e),
    };
    // The solver deduplicates repeated IN-list constants; a repeated
    // original statement contributes its rows once.
    let mut seen = Vec::new();
    let mut union_rows: Vec<Vec<Value>> = Vec::new();
    let mut columns: Option<Vec<String>> = None;
    for sql in &rw.original_statements {
        if seen.contains(sql) {
            continue;
        }
        seen.push(sql.clone());
        let r = match exec(db, sql) {
            Ok(r) => r,
            Err(e) => return Verdict::Skipped(format!("original inexecutable: {e}")),
        };
        if columns.is_none() {
            columns = Some(r.columns.clone());
        }
        union_rows.extend(r.rows);
    }
    let Some(columns) = columns else {
        return Verdict::Skipped("instance has no originals".into());
    };
    let merged = match exec(db, merged_sql) {
        Ok(r) => r,
        Err(e) => return Verdict::Mismatch(format!("rewrite inexecutable: {e}")),
    };
    let projected = match project(&merged, &columns) {
        Ok(rows) => rows,
        Err(e) => return Verdict::Mismatch(e),
    };
    if row_keys(&projected) != row_keys(&union_rows) {
        return Verdict::Mismatch(format!(
            "result sets differ: originals returned {} rows, rewrite {} \
             (projected onto {columns:?})",
            union_rows.len(),
            projected.len()
        ));
    }
    Verdict::Equivalent {
        nonempty: !union_rows.is_empty(),
    }
}

/// DS/DF: for every original, the merged query projected onto that
/// original's columns equals its rows. For DF the original's columns are
/// qualified by its table in the merged projection; [`col_index`]'s
/// qualified-first matching covers both cases because each original names
/// its table via the qualified spelling when the bare name is ambiguous.
fn check_per_original(db: &MiniDb, rw: &SolvedRewrite) -> Verdict {
    let merged_sql = match single_rewrite(rw) {
        Ok(s) => s,
        Err(e) => return Verdict::Mismatch(e),
    };
    let merged = match exec(db, merged_sql) {
        Ok(r) => r,
        Err(e) => return Verdict::Mismatch(format!("rewrite inexecutable: {e}")),
    };
    let mut nonempty = false;
    for sql in &rw.original_statements {
        let original = match exec(db, sql) {
            Ok(r) => r,
            Err(e) => return Verdict::Skipped(format!("original inexecutable: {e}")),
        };
        nonempty |= !original.rows.is_empty();
        // Qualify the original's columns by its table when the rewrite is a
        // join (DF): `ra` in the query against `galaxy` maps to `galaxy.ra`.
        let columns: Vec<String> = if rw.class == AntipatternClass::DfStifle {
            match table_of(sql) {
                Some(table) => original
                    .columns
                    .iter()
                    .map(|c| format!("{table}.{}", c.rsplit('.').next().unwrap_or(c)))
                    .collect(),
                None => original.columns.clone(),
            }
        } else {
            original.columns.clone()
        };
        let projected = match project(&merged, &columns) {
            Ok(rows) => rows,
            Err(e) => return Verdict::Mismatch(e),
        };
        if row_keys(&projected) != row_keys(&original.rows) {
            return Verdict::Mismatch(format!(
                "original {sql:?} returned {} rows, rewrite projected onto \
                 {columns:?} returned {}",
                original.rows.len(),
                projected.len()
            ));
        }
    }
    Verdict::Equivalent { nonempty }
}

/// The primary table of a statement, lower-cased the way the solver's
/// analysis facts spell it.
fn table_of(sql: &str) -> Option<String> {
    let stmt = sqlog_sql::parse_statement(sql).ok()?;
    let q = stmt.as_select()?;
    sqlog_skeleton::primary_table(&q.body)
}

/// SNC: the original's never-true predicate returns no rows; the rewrite
/// executes (its result is the *corrected* semantics, deliberately
/// different — that is what makes SNC an antipattern).
fn check_snc(db: &MiniDb, rw: &SolvedRewrite) -> Verdict {
    for sql in &rw.original_statements {
        match exec(db, sql) {
            Ok(r) if r.rows.is_empty() => {}
            Ok(r) => {
                return Verdict::Mismatch(format!(
                    "SNC original {sql:?} returned {} rows; `= NULL` is never true",
                    r.rows.len()
                ))
            }
            Err(e) => return Verdict::Skipped(format!("original inexecutable: {e}")),
        }
    }
    for sql in &rw.rewritten_statements {
        if let Err(e) = exec(db, sql) {
            return Verdict::Mismatch(format!("rewrite inexecutable: {e}"));
        }
    }
    Verdict::Equivalent { nonempty: false }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlog_minidb::datagen::skyserver_db;

    fn rewrite(class: AntipatternClass, originals: &[&str], rewritten: &[&str]) -> SolvedRewrite {
        SolvedRewrite {
            class,
            entry_ids: (0..originals.len() as u64).collect(),
            original_statements: originals.iter().map(|s| s.to_string()).collect(),
            rewritten_statements: rewritten.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn dw_merge_is_equivalent() {
        let db = skyserver_db(500, 7);
        let rw = rewrite(
            AntipatternClass::DwStifle,
            &[
                "SELECT rowc_g, colc_g FROM photoprimary WHERE objid=587722982000000000",
                "SELECT rowc_g, colc_g FROM photoprimary WHERE objid=587722982000001000",
            ],
            &[
                "SELECT objid, rowc_g, colc_g FROM photoprimary WHERE objid IN \
               (587722982000000000, 587722982000001000)",
            ],
        );
        let report = check_rewrites(&db, &[rw]);
        assert!(report.passed(), "{:?}", report.mismatches);
        assert_eq!(report.equivalent, 1);
        assert_eq!(report.nonempty, 1);
    }

    #[test]
    fn dw_dropped_constant_is_caught() {
        let db = skyserver_db(500, 7);
        let rw = rewrite(
            AntipatternClass::DwStifle,
            &[
                "SELECT rowc_g FROM photoprimary WHERE objid=587722982000000000",
                "SELECT rowc_g FROM photoprimary WHERE objid=587722982000001000",
            ],
            // Broken rewrite: one constant lost.
            &["SELECT objid, rowc_g FROM photoprimary WHERE objid IN (587722982000000000)"],
        );
        let report = check_rewrites(&db, &[rw]);
        assert_eq!(report.mismatches.len(), 1, "{report:?}");
    }

    #[test]
    fn ds_union_is_equivalent() {
        let db = skyserver_db(500, 7);
        let rw = rewrite(
            AntipatternClass::DsStifle,
            &[
                "SELECT rowc_r, colc_r FROM photoprimary WHERE objid=587722982000002000",
                "SELECT rowc_g, colc_g FROM photoprimary WHERE objid=587722982000002000",
            ],
            &["SELECT rowc_r, colc_r, rowc_g, colc_g FROM photoprimary \
               WHERE objid = 587722982000002000"],
        );
        let report = check_rewrites(&db, &[rw]);
        assert!(report.passed(), "{:?}", report.mismatches);
    }

    #[test]
    fn df_join_is_equivalent() {
        let db = skyserver_db(500, 7);
        let rw = rewrite(
            AntipatternClass::DfStifle,
            &[
                "SELECT ra FROM photoprimary WHERE objid=587722982000003000",
                "SELECT ra FROM galaxy WHERE objid=587722982000003000",
            ],
            &[
                "SELECT photoprimary.ra, galaxy.ra FROM photoprimary INNER JOIN galaxy \
               ON galaxy.objid = photoprimary.objid WHERE photoprimary.objid = \
               587722982000003000",
            ],
        );
        let report = check_rewrites(&db, &[rw]);
        assert!(report.passed(), "{:?}", report.mismatches);
        assert_eq!(report.nonempty, 1);
    }

    #[test]
    fn snc_originals_must_be_empty() {
        let db = skyserver_db(500, 7);
        let good = rewrite(
            AntipatternClass::Snc,
            &["SELECT * FROM photoprimary WHERE flags = NULL"],
            &["SELECT * FROM photoprimary WHERE flags IS NULL"],
        );
        // A "rewrite" whose original actually returns rows is not SNC.
        let bad = rewrite(
            AntipatternClass::Snc,
            &["SELECT * FROM photoprimary WHERE type = 3"],
            &["SELECT * FROM photoprimary WHERE type IS NULL"],
        );
        let report = check_rewrites(&db, &[good, bad]);
        assert_eq!(report.equivalent, 1);
        assert_eq!(report.mismatches.len(), 1);
    }

    #[test]
    fn dw_rewrite_plans_a_pk_seek() {
        let db = skyserver_db(500, 7);
        let rw = rewrite(
            AntipatternClass::DwStifle,
            &[
                "SELECT rowc_g, colc_g FROM photoprimary WHERE objid=587722982000000000",
                "SELECT rowc_g, colc_g FROM photoprimary WHERE objid=587722982000001000",
            ],
            &[
                "SELECT objid, rowc_g, colc_g FROM photoprimary WHERE objid IN \
               (587722982000000000, 587722982000001000)",
            ],
        );
        let report = check_rewrites_with_plans(&db, &[rw], true);
        assert!(report.passed(), "{:?}", report.plan_failures);
        assert_eq!(report.plan_checked, 1);
        assert_eq!(report.plan_seeks, 1);
        // The originals seek too (objid is the primary key), so no
        // full-scan-to-seek conversion is claimed here.
        assert_eq!(report.plan_full_scan_originals, 0);
    }

    #[test]
    fn dw_rewrite_seeks_where_naive_originals_full_scanned() {
        // htmid only has a *range* index: the naive reference executor
        // full-scans `htmid = K` (its point probes are hash-only), while
        // the planner answers the merged rewrite with a degenerate
        // range seek. This is exactly the stifle win the §6.3 experiment
        // measures.
        let db = skyserver_db(500, 7);
        let htmid = {
            let (r, _) = db
                .execute_sql(
                    "SELECT TOP 1 htmid FROM photoprimary WHERE objid = 587722982000000000",
                )
                .unwrap();
            match r.rows[0][0] {
                Value::Int(v) => v,
                ref other => panic!("unexpected htmid {other:?}"),
            }
        };
        let original = format!("SELECT ra, dec FROM photoprimary WHERE htmid = {htmid}");
        let rw = rewrite(
            AntipatternClass::DwStifle,
            &[&original, &original],
            &[&format!(
                "SELECT htmid, ra, dec FROM photoprimary WHERE htmid IN ({htmid})"
            )],
        );
        let report = check_rewrites_with_plans(&db, &[rw], true);
        assert!(report.passed(), "{:?}", report.plan_failures);
        assert_eq!(report.plan_seeks, 1);
        assert_eq!(report.plan_full_scan_originals, 1);
    }

    #[test]
    fn oversized_in_list_trips_the_seek_assertion() {
        // employee has 50 rows: an IN list probing most of the table makes
        // the full scan estimate cheaper than the seek, so the planner
        // (correctly, by cost) full-scans — and the strict plan assertion
        // reports it. The generated corpus never gets near this regime.
        let db = skyserver_db(500, 7);
        let keys: Vec<String> = (1..=40).map(|k| k.to_string()).collect();
        let originals: Vec<String> = (1..=40)
            .map(|k| format!("SELECT name FROM employee WHERE empid={k}"))
            .collect();
        let original_refs: Vec<&str> = originals.iter().map(|s| s.as_str()).collect();
        let merged = format!(
            "SELECT empid, name FROM employee WHERE empid IN ({})",
            keys.join(", ")
        );
        let rw = rewrite(AntipatternClass::DwStifle, &original_refs, &[&merged]);
        let report = check_rewrites_with_plans(&db, &[rw], true);
        assert_eq!(report.equivalent, 1, "{:?}", report.mismatches);
        assert_eq!(report.plan_failures.len(), 1, "{:?}", report.plan_failures);
        assert!(report.plan_failures[0].contains("index seek was available"));
    }

    #[test]
    fn plan_checks_off_by_default_in_check_rewrites() {
        let db = skyserver_db(200, 7);
        let rw = rewrite(
            AntipatternClass::DwStifle,
            &["SELECT rowc_g FROM photoprimary WHERE objid=587722982000000000"],
            &["SELECT objid, rowc_g FROM photoprimary WHERE objid IN (587722982000000000)"],
        );
        let report = check_rewrites(&db, &[rw]);
        assert!(report.passed());
        assert_eq!(report.plan_checked, 0);
        assert_eq!(report.plan_seeks, 0);
    }

    #[test]
    fn unknown_tables_are_skipped_not_passed() {
        let db = skyserver_db(100, 7);
        let rw = rewrite(
            AntipatternClass::DwStifle,
            &["SELECT a FROM nosuchtable WHERE k = 1"],
            &["SELECT k, a FROM nosuchtable WHERE k IN (1)"],
        );
        let report = check_rewrites(&db, &[rw]);
        assert_eq!(report.skipped, 1);
        assert_eq!(report.equivalent, 0);
        assert!(report.passed());
    }
}
