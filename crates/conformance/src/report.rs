//! The combined conformance report: one pass/fail and a machine-readable
//! JSON form for CI artifacts.

use crate::{DifferentialReport, MetamorphicReport, OracleReport, RecallReport};
use sqlog_obs::Json;

/// Everything one conformance run produced.
#[derive(Debug, Clone)]
pub struct ConformanceReport {
    /// Master seed of the run.
    pub seed: u64,
    /// Requested generator scale (`--cases`).
    pub cases: usize,
    /// Entries the generated log actually contains.
    pub log_entries: usize,
    /// Differential-matrix outcome.
    pub differential: DifferentialReport,
    /// Semantic-oracle outcome; `None` when the oracle was disabled.
    pub oracle: Option<OracleReport>,
    /// Metamorphic-invariant outcome.
    pub metamorphic: MetamorphicReport,
    /// Recall against the generator's ground truth.
    pub recall: RecallReport,
}

impl ConformanceReport {
    /// Did every enabled check pass?
    pub fn passed(&self) -> bool {
        self.differential.passed()
            && self.oracle.as_ref().is_none_or(|o| o.passed())
            && self.metamorphic.passed()
            && self.recall.passed()
    }

    /// Every failure across all checks, prefixed by its check name.
    pub fn failures(&self) -> Vec<String> {
        let mut out = Vec::new();
        for m in &self.differential.mismatches {
            out.push(format!("differential: {m}"));
        }
        if let Some(oracle) = &self.oracle {
            for m in &oracle.mismatches {
                out.push(format!("oracle: {m}"));
            }
            for m in &oracle.plan_failures {
                out.push(format!("oracle-plan: {m}"));
            }
        }
        for m in &self.metamorphic.failures {
            out.push(format!("metamorphic: {m}"));
        }
        for m in &self.recall.missed {
            out.push(format!("recall: {m}"));
        }
        out
    }

    /// The machine-readable report (schema 1).
    pub fn to_json(&self) -> Json {
        let strings = |v: &[String]| Json::Arr(v.iter().map(|s| Json::Str(s.clone())).collect());
        let mut fields = vec![
            ("schema", Json::U64(1)),
            ("tool", Json::Str("sqlog-conform".into())),
            ("passed", Json::Bool(self.passed())),
            ("seed", Json::U64(self.seed)),
            ("cases", Json::U64(self.cases as u64)),
            ("log_entries", Json::U64(self.log_entries as u64)),
            (
                "differential",
                Json::obj(vec![
                    ("legs", Json::U64(self.differential.legs as u64)),
                    (
                        "hostile_lines",
                        Json::U64(self.differential.hostile_lines as u64),
                    ),
                    ("entries", Json::U64(self.differential.entries as u64)),
                    ("mismatches", strings(&self.differential.mismatches)),
                ]),
            ),
        ];
        if let Some(oracle) = &self.oracle {
            fields.push((
                "oracle",
                Json::obj(vec![
                    ("pairs", Json::U64(oracle.pairs as u64)),
                    ("equivalent", Json::U64(oracle.equivalent as u64)),
                    ("nonempty", Json::U64(oracle.nonempty as u64)),
                    ("skipped", Json::U64(oracle.skipped as u64)),
                    ("mismatches", strings(&oracle.mismatches)),
                    ("plan_checked", Json::U64(oracle.plan_checked as u64)),
                    ("plan_seeks", Json::U64(oracle.plan_seeks as u64)),
                    (
                        "plan_full_scan_originals",
                        Json::U64(oracle.plan_full_scan_originals as u64),
                    ),
                    ("plan_failures", strings(&oracle.plan_failures)),
                ]),
            ));
        }
        fields.push((
            "metamorphic",
            Json::obj(vec![
                (
                    "fixpoint_checked",
                    Json::U64(self.metamorphic.fixpoint_checked as u64),
                ),
                (
                    "skeleton_checked",
                    Json::U64(self.metamorphic.skeleton_checked as u64),
                ),
                (
                    "skeleton_skipped",
                    Json::U64(self.metamorphic.skeleton_skipped as u64),
                ),
                ("shift_checked", Json::Bool(self.metamorphic.shift_checked)),
                ("failures", strings(&self.metamorphic.failures)),
            ]),
        ));
        let per_class = Json::Obj(
            self.recall
                .per_class
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        Json::obj(vec![
                            ("expected", Json::U64(v.expected as u64)),
                            ("detected", Json::U64(v.detected as u64)),
                        ]),
                    )
                })
                .collect(),
        );
        fields.push((
            "recall",
            Json::obj(vec![
                ("expected", Json::U64(self.recall.expected as u64)),
                ("detected", Json::U64(self.recall.detected as u64)),
                // F64 so the value always renders with a fraction ("1.0").
                ("recall", Json::F64(self.recall.recall())),
                ("per_class", per_class),
                ("missed", strings(&self.recall.missed)),
            ]),
        ));
        Json::obj(fields)
    }

    /// A short human summary, one line per check.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "conformance seed={} cases={} entries={}\n",
            self.seed, self.cases, self.log_entries
        );
        out.push_str(&format!(
            "  differential: {} legs, {} hostile lines, {} mismatches\n",
            self.differential.legs,
            self.differential.hostile_lines,
            self.differential.mismatches.len()
        ));
        match &self.oracle {
            Some(o) => {
                out.push_str(&format!(
                    "  oracle: {}/{} equivalent ({} non-empty, {} skipped), {} mismatches\n",
                    o.equivalent,
                    o.pairs,
                    o.nonempty,
                    o.skipped,
                    o.mismatches.len()
                ));
                if o.plan_checked > 0 || !o.plan_failures.is_empty() {
                    out.push_str(&format!(
                        "  oracle plans: {} checked, {} seeks, {} originals \
                         full-scanned naively, {} failures\n",
                        o.plan_checked,
                        o.plan_seeks,
                        o.plan_full_scan_originals,
                        o.plan_failures.len()
                    ));
                }
            }
            None => out.push_str("  oracle: disabled\n"),
        }
        out.push_str(&format!(
            "  metamorphic: {} fixpoint + {} skeleton checks, {} failures\n",
            self.metamorphic.fixpoint_checked,
            self.metamorphic.skeleton_checked,
            self.metamorphic.failure_count()
        ));
        out.push_str(&format!(
            "  recall: {}/{} planted groups detected ({:.3})\n",
            self.recall.detected,
            self.recall.expected,
            self.recall.recall()
        ));
        out.push_str(if self.passed() { "PASS" } else { "FAIL" });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_report() -> ConformanceReport {
        ConformanceReport {
            seed: 1,
            cases: 0,
            log_entries: 0,
            differential: DifferentialReport::default(),
            oracle: Some(OracleReport::default()),
            metamorphic: MetamorphicReport::default(),
            recall: RecallReport::default(),
        }
    }

    #[test]
    fn json_shape_is_stable() {
        let j = empty_report().to_json();
        assert_eq!(j.get("schema"), Some(&Json::U64(1)));
        assert_eq!(j.get("passed"), Some(&Json::Bool(true)));
        let recall = j.get("recall").expect("recall object");
        // An empty run has perfect recall and renders it with a fraction.
        assert!(recall.render().contains("\"recall\":1.0"), "{}", j.render());
    }

    #[test]
    fn failures_are_prefixed_by_check() {
        let mut r = empty_report();
        r.differential.mismatches.push("leg x".into());
        r.metamorphic.failures.push("fixpoint y".into());
        r.recall.missed.push("group 7".into());
        assert!(!r.passed());
        let f = r.failures();
        assert_eq!(f.len(), 3);
        assert!(f[0].starts_with("differential: "));
        assert!(f[1].starts_with("metamorphic: "));
        assert!(f[2].starts_with("recall: "));
        assert!(r.summary().ends_with("FAIL"));
    }
}
