//! `sqlog-conform` — the conformance harness as a command-line tool.
//!
//! Generates a seeded log with planted antipatterns, then runs the full
//! suite (see `sqlog-conformance`): the differential execution matrix, the
//! metamorphic invariants, recall scoring against the generator's ground
//! truth and — with `--oracle` — semantic result-set checking of every
//! solver rewrite against `sqlog-minidb`.
//!
//! ```text
//! sqlog-conform [--seed N] [--cases N] [--oracle] [--db-rows N]
//!               [--json REPORT.json] [--quiet]
//! ```
//!
//! Exit status 0 iff every enabled check passed. `--json` writes the
//! machine-readable report (schema 1, including the harness's `sqlog-obs`
//! counters); `-` writes it to stdout.

use sqlog_conformance::{run_conformance, ConformanceConfig};
use sqlog_obs::{Json, Recorder};
use std::io::Write as _;
use std::process::exit;

struct Args {
    cfg: ConformanceConfig,
    json: Option<String>,
    quiet: bool,
}

const USAGE: &str = "usage: sqlog-conform [--seed N] [--cases N] [--oracle] [--db-rows N]\n\
    [--json REPORT.json] [--quiet]";

fn parse_args() -> Result<Args, String> {
    let mut cfg = ConformanceConfig {
        oracle: false, // opt-in on the command line
        recorder: Recorder::new(),
        ..ConformanceConfig::default()
    };
    let mut json = None;
    let mut quiet = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--seed" => {
                cfg.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--cases" => {
                cfg.cases = value("--cases")?
                    .parse()
                    .map_err(|e| format!("bad --cases: {e}"))?;
            }
            "--oracle" => cfg.oracle = true,
            "--db-rows" => {
                cfg.db_rows = value("--db-rows")?
                    .parse()
                    .map_err(|e| format!("bad --db-rows: {e}"))?;
            }
            "--json" => json = Some(value("--json")?),
            "--quiet" => quiet = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(Args { cfg, json, quiet })
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                exit(0);
            }
            eprintln!("error: {msg}\n{USAGE}");
            exit(2);
        }
    };

    // Fail fast on an unwritable report path, before minutes of checking.
    let mut sink = match args.json.as_deref() {
        Some("-") | None => None,
        Some(path) => match std::fs::File::create(path) {
            Ok(f) => Some(std::io::BufWriter::new(f)),
            Err(e) => {
                eprintln!("error: cannot create {path}: {e}");
                exit(2);
            }
        },
    };

    let report = run_conformance(&args.cfg);

    if args.json.is_some() {
        // Attach the recorder's counters so CI artifacts carry the harness
        // internals alongside the verdict.
        let mut j = report.to_json();
        let counters = Json::Obj(
            args.cfg
                .recorder
                .counters()
                .into_iter()
                .map(|(k, v)| (k, Json::U64(v)))
                .collect(),
        );
        if let Json::Obj(fields) = &mut j {
            fields.push(("counters".to_string(), counters));
        }
        let rendered = j.render();
        match &mut sink {
            Some(f) => {
                if let Err(e) = f.write_all(rendered.as_bytes()).and_then(|()| f.flush()) {
                    eprintln!("error: cannot write report: {e}");
                    exit(2);
                }
            }
            None => println!("{rendered}"),
        }
    }

    if !args.quiet {
        eprintln!("{}", report.summary());
        for failure in report.failures() {
            eprintln!("  FAIL {failure}");
        }
    }
    exit(if report.passed() { 0 } else { 1 });
}
