//! `sqlog-conform` — the conformance harness as a command-line tool.
//!
//! Generates a seeded log with planted antipatterns, then runs the full
//! suite (see `sqlog-conformance`): the differential execution matrix, the
//! metamorphic invariants, recall scoring against the generator's ground
//! truth and — with `--oracle` — semantic result-set checking of every
//! solver rewrite against `sqlog-minidb`.
//!
//! ```text
//! sqlog-conform [--seed N] [--cases N] [--oracle] [--plans] [--no-plans]
//!               [--db-rows N] [--json REPORT.json] [--ledger DIR] [--quiet]
//! ```
//!
//! `--plans` enables the oracle (like `--oracle`) and additionally holds
//! every equivalent DW/DS/DF rewrite to the planner's plan properties:
//! the rewrite must plan an index seek whenever one is available, and must
//! never plan costlier than the sum of its originals. Plan checks are on
//! by default whenever the oracle runs; `--no-plans` turns them off.
//!
//! Exit status 0 iff every enabled check passed. `--json` writes the
//! machine-readable report (schema 1, including the harness's `sqlog-obs`
//! counters); `-` writes it to stdout. `--ledger DIR` appends the same
//! report (kind `"conform"`) to a run-ledger directory, giving nightly
//! conformance runs a durable history that `sqlog-report` can inspect.

use sqlog_conformance::{run_conformance, ConformanceConfig};
use sqlog_obs::{Json, Ledger, LedgerEntry, MachineInfo, Recorder, LEDGER_SCHEMA};
use std::io::Write as _;
use std::process::exit;
use std::time::{SystemTime, UNIX_EPOCH};

struct Args {
    cfg: ConformanceConfig,
    json: Option<String>,
    ledger: Option<String>,
    quiet: bool,
}

const USAGE: &str = "usage: sqlog-conform [--seed N] [--cases N] [--oracle] [--plans]\n\
    [--no-plans] [--db-rows N] [--json REPORT.json] [--ledger DIR] [--quiet]";

fn parse_args() -> Result<Args, String> {
    let mut cfg = ConformanceConfig {
        oracle: false, // opt-in on the command line
        recorder: Recorder::new(),
        ..ConformanceConfig::default()
    };
    let mut json = None;
    let mut ledger = None;
    let mut quiet = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--seed" => {
                cfg.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--cases" => {
                cfg.cases = value("--cases")?
                    .parse()
                    .map_err(|e| format!("bad --cases: {e}"))?;
            }
            "--oracle" => cfg.oracle = true,
            "--plans" => {
                cfg.oracle = true;
                cfg.plan_checks = true;
            }
            "--no-plans" => cfg.plan_checks = false,
            "--db-rows" => {
                cfg.db_rows = value("--db-rows")?
                    .parse()
                    .map_err(|e| format!("bad --db-rows: {e}"))?;
            }
            "--json" => json = Some(value("--json")?),
            "--ledger" => ledger = Some(value("--ledger")?),
            "--quiet" => quiet = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(Args {
        cfg,
        json,
        ledger,
        quiet,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                exit(0);
            }
            eprintln!("error: {msg}\n{USAGE}");
            exit(2);
        }
    };

    // Fail fast on an unwritable report path, before minutes of checking.
    let mut sink = match args.json.as_deref() {
        Some("-") | None => None,
        Some(path) => match std::fs::File::create(path) {
            Ok(f) => Some(std::io::BufWriter::new(f)),
            Err(e) => {
                eprintln!("error: cannot create {path}: {e}");
                exit(2);
            }
        },
    };

    // Same fail-fast treatment for the ledger directory.
    let ledger = args.ledger.as_deref().map(|dir| match Ledger::open(dir) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot open ledger {dir}: {e}");
            exit(2);
        }
    });

    let report = run_conformance(&args.cfg);

    // Attach the recorder's counters so CI artifacts carry the harness
    // internals alongside the verdict.
    let report_json = {
        let mut j = report.to_json();
        let counters = Json::Obj(
            args.cfg
                .recorder
                .counters()
                .into_iter()
                .map(|(k, v)| (k, Json::U64(v)))
                .collect(),
        );
        if let Json::Obj(fields) = &mut j {
            fields.push(("counters".to_string(), counters));
        }
        j
    };

    if args.json.is_some() {
        let rendered = report_json.render();
        match &mut sink {
            Some(f) => {
                if let Err(e) = f.write_all(rendered.as_bytes()).and_then(|()| f.flush()) {
                    eprintln!("error: cannot write report: {e}");
                    exit(2);
                }
            }
            None => println!("{rendered}"),
        }
    }

    if let Some(ledger) = &ledger {
        let entry = LedgerEntry {
            schema: LEDGER_SCHEMA,
            kind: "conform".to_string(),
            created_unix_ms: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0),
            // Seeded generation has no input file; the seed stands in for
            // the configuration identity.
            config_fingerprint: args.cfg.seed,
            input_bytes: 0,
            input_fnv: 0,
            machine: MachineInfo::capture(),
            report: report_json.clone(),
        };
        match ledger.append(&entry) {
            Ok(path) => eprintln!("appended run ledger entry {}", path.display()),
            Err(e) => {
                eprintln!(
                    "error: cannot append to ledger {}: {e}",
                    ledger.dir().display()
                );
                exit(2);
            }
        }
    }

    if !args.quiet {
        eprintln!("{}", report.summary());
        for failure in report.failures() {
            eprintln!("  FAIL {failure}");
        }
    }
    exit(if report.passed() { 0 } else { 1 });
}
