//! Recall scoring: every planted antipattern must be detected.
//!
//! The generator labels each emitted statement with its intent and group id
//! ([`sqlog_gen::TruthSidecar`] aggregates those into planted instances);
//! the pipeline reports, for every detected instance, the original-log
//! entry ids it covers. A planted group counts as *detected* when at least
//! one detected instance of the expected class covers at least one of the
//! group's entries — the detector may legitimately split one planted group
//! into several instances (per constant pair, per session) or merge
//! adjacent groups, so id-set equality would be the wrong join.

use sqlog_core::PipelineResult;
use sqlog_gen::TruthSidecar;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Per-class expected/detected tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassRecall {
    /// Planted groups of this class the detector should find.
    pub expected: usize,
    /// Of those, how many were found.
    pub detected: usize,
}

/// Outcome of scoring one run against the sidecar.
#[derive(Debug, Clone, Default)]
pub struct RecallReport {
    /// Planted groups with an expected detector class.
    pub expected: usize,
    /// Of those, how many some detected instance of that class covers.
    pub detected: usize,
    /// Per-class breakdown, keyed by detector class label.
    pub per_class: BTreeMap<String, ClassRecall>,
    /// Human-readable description of every missed group (empty = pass).
    pub missed: Vec<String>,
}

impl RecallReport {
    /// `detected / expected`, or 1.0 for a log with nothing planted.
    pub fn recall(&self) -> f64 {
        if self.expected == 0 {
            1.0
        } else {
            self.detected as f64 / self.expected as f64
        }
    }

    /// Did the detector find every planted group?
    pub fn passed(&self) -> bool {
        self.missed.is_empty()
    }
}

/// Scores the pipeline's detections against the generator's ground truth.
pub fn score_recall(truth: &TruthSidecar, result: &PipelineResult) -> RecallReport {
    // Index: class label → set of covered entry ids.
    let mut covered: HashMap<&str, HashSet<u64>> = HashMap::new();
    for (inst, entry_ids) in result.instances.iter().zip(&result.instance_entry_ids) {
        covered
            .entry(inst.class.label())
            .or_default()
            .extend(entry_ids.iter().copied());
    }

    let mut report = RecallReport::default();
    for planted in truth.expected() {
        let class = planted.expected.expect("expected() filters on Some");
        report.expected += 1;
        let tally = report.per_class.entry(class.to_string()).or_default();
        tally.expected += 1;
        let hit = covered
            .get(class)
            .is_some_and(|ids| planted.entry_ids.iter().any(|id| ids.contains(id)));
        if hit {
            report.detected += 1;
            tally.detected += 1;
        } else {
            report.missed.push(format!(
                "group {} ({:?}): no {class} instance covers entries {:?}",
                planted.group, planted.kind, planted.entry_ids
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlog_catalog::skyserver_catalog;
    use sqlog_core::Pipeline;
    use sqlog_gen::{generate, GenConfig};

    #[test]
    fn empty_truth_scores_perfect() {
        let catalog = skyserver_catalog();
        let log = generate(&GenConfig::with_scale(50, 3));
        let result = Pipeline::new(&catalog).run(&log);
        let report = score_recall(&TruthSidecar::default(), &result);
        assert_eq!(report.expected, 0);
        assert!(report.passed());
        assert_eq!(report.recall(), 1.0);
    }

    #[test]
    fn generated_log_recall_is_total() {
        let catalog = skyserver_catalog();
        let log = generate(&GenConfig::with_scale(2_000, 21));
        let truth = TruthSidecar::derive(&log);
        let result = Pipeline::new(&catalog).run(&log);
        let report = score_recall(&truth, &result);
        assert!(report.expected > 0);
        assert!(report.passed(), "missed: {:#?}", report.missed);
        assert_eq!(report.recall(), 1.0);
    }

    #[test]
    fn a_missing_class_is_reported() {
        let catalog = skyserver_catalog();
        let log = generate(&GenConfig::with_scale(2_000, 21));
        let truth = TruthSidecar::derive(&log);
        let mut result = Pipeline::new(&catalog).run(&log);
        // Drop every SNC detection: all planted SNC groups must turn up missed.
        let keep: Vec<usize> = (0..result.instances.len())
            .filter(|&i| result.instances[i].class.label() != "SNC")
            .collect();
        result.instances = keep.iter().map(|&i| result.instances[i].clone()).collect();
        result.instance_entry_ids = keep
            .iter()
            .map(|&i| result.instance_entry_ids[i].clone())
            .collect();
        let report = score_recall(&truth, &result);
        let snc = report.per_class.get("SNC").copied().unwrap_or_default();
        assert!(snc.expected > 0);
        assert_eq!(snc.detected, 0);
        assert!(!report.passed());
        assert!(report.recall() < 1.0);
    }
}
