//! # sqlog-conformance — the standing correctness harness
//!
//! The paper's central claim (§6) is that antipattern *solving* rewrites
//! the log without changing query semantics. This crate turns that claim —
//! and the pipeline's determinism and robustness contracts — into a
//! repeatable, seeded conformance run:
//!
//! 1. **Differential matrix** ([`differential`]): a `sqlog-gen` log (with
//!    planted Stifle/CTH/SNC instances) is cleaned at
//!    `threads {1, 2, 8, auto}` × `{cache, no-cache}` ×
//!    `{strict, lenient, lenient-over-hostile-bytes}`, and every leg's
//!    clean log, removal log and stable statistics must be byte-identical
//!    to the reference leg.
//! 2. **Semantic oracle** ([`oracle`]): every (original sequence,
//!    rewritten query) pair the solver produced is executed against
//!    `sqlog-minidb` over generated SkyServer-like tables and checked for
//!    result-set equivalence, with class-aware rules (DW/DS/DF projection
//!    mapping; SNC's intended *non*-equivalence).
//! 3. **Metamorphic invariants** ([`metamorphic`]): parse→print→parse
//!    fixpoint, template-fingerprint invariance under whitespace / case /
//!    comment / literal perturbation, and detection-count invariance under
//!    per-user session time shifts.
//! 4. **Recall scoring** ([`recall`]): detected instances are joined
//!    against the generator's ground-truth sidecar
//!    ([`sqlog_gen::TruthSidecar`]); every planted antipattern must be
//!    found.
//!
//! The harness is both a library (see `tests/conformance_smoke.rs`) and a
//! binary:
//!
//! ```text
//! sqlog-conform --seed 42 --cases 500 --oracle --json REPORT.json
//! ```
//!
//! A committed corpus of minimized adversarial logs
//! (`crates/conformance/corpus/`) is replayed by `tests/corpus_replay.rs`
//! so once-failing inputs stay fixed.

#![warn(missing_docs)]

pub mod differential;
pub mod metamorphic;
pub mod oracle;
pub mod recall;
pub mod report;

pub use differential::DifferentialReport;
pub use metamorphic::MetamorphicReport;
pub use oracle::OracleReport;
pub use recall::RecallReport;
pub use report::ConformanceReport;

use sqlog_catalog::skyserver_catalog;
use sqlog_gen::{generate, GenConfig, TruthSidecar};
use sqlog_minidb::datagen::skyserver_db;
use sqlog_obs::Recorder;

/// Configuration of one conformance run.
#[derive(Debug, Clone)]
pub struct ConformanceConfig {
    /// Master seed: the generated log, database and perturbations are a
    /// pure function of it.
    pub seed: u64,
    /// Scale of the generated log (statements), the harness's `--cases`.
    pub cases: usize,
    /// Run the minidb semantic oracle over the solver's rewrites.
    pub oracle: bool,
    /// Hold equivalent rewrites to the planner's plan properties as well
    /// (seek-over-scan, merge-never-plans-worse); oracle only.
    pub plan_checks: bool,
    /// Rows per generated minidb table (oracle only).
    pub db_rows: usize,
    /// Recorder the harness reports its counters through.
    pub recorder: Recorder,
}

impl Default for ConformanceConfig {
    fn default() -> Self {
        ConformanceConfig {
            seed: 42,
            cases: 500,
            oracle: true,
            plan_checks: true,
            db_rows: 2_000,
            recorder: Recorder::disabled(),
        }
    }
}

/// Runs the full conformance suite and returns the report.
pub fn run_conformance(cfg: &ConformanceConfig) -> ConformanceReport {
    let rec = &cfg.recorder;
    let _span = rec.span("conform");
    let catalog = skyserver_catalog();

    // One seeded log drives every check.
    let log = {
        let _span = rec.span("conform.generate");
        generate(&GenConfig::with_scale(cfg.cases, cfg.seed))
    };
    let truth = TruthSidecar::derive(&log);
    rec.counter("conform.log_entries", log.len() as u64);
    rec.counter("conform.planted_groups", truth.instances.len() as u64);

    let (reference, differential) = {
        let _span = rec.span("conform.differential");
        differential::run_matrix(&log, &catalog)
    };
    rec.counter("conform.differential.legs", differential.legs as u64);
    rec.counter(
        "conform.differential.mismatches",
        differential.mismatches.len() as u64,
    );

    let recall = {
        let _span = rec.span("conform.recall");
        recall::score_recall(&truth, &reference)
    };
    rec.counter("conform.recall.expected", recall.expected as u64);
    rec.counter("conform.recall.detected", recall.detected as u64);

    let oracle = if cfg.oracle {
        let _span = rec.span("conform.oracle");
        let db = skyserver_db(cfg.db_rows, cfg.seed);
        let r = oracle::check_rewrites_with_plans(&db, &reference.rewrites, cfg.plan_checks);
        rec.counter("conform.oracle.pairs", r.pairs as u64);
        rec.counter("conform.oracle.equivalent", r.equivalent as u64);
        rec.counter("conform.oracle.skipped", r.skipped as u64);
        rec.counter("conform.oracle.mismatches", r.mismatches.len() as u64);
        rec.counter("conform.oracle.plan_checked", r.plan_checked as u64);
        rec.counter("conform.oracle.plan_seeks", r.plan_seeks as u64);
        rec.counter("conform.oracle.plan_failures", r.plan_failures.len() as u64);
        Some(r)
    } else {
        None
    };

    let metamorphic = {
        let _span = rec.span("conform.metamorphic");
        metamorphic::check_invariants(&log, &catalog, cfg.seed)
    };
    rec.counter(
        "conform.metamorphic.checked",
        (metamorphic.fixpoint_checked + metamorphic.skeleton_checked) as u64,
    );
    rec.counter(
        "conform.metamorphic.failures",
        metamorphic.failure_count() as u64,
    );

    ConformanceReport {
        seed: cfg.seed,
        cases: cfg.cases,
        log_entries: log.len(),
        differential,
        oracle,
        metamorphic,
        recall,
    }
}
