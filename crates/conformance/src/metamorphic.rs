//! Metamorphic invariants: transformations that must not change anything.
//!
//! Three families of checks, all driven by statements sampled from the
//! generated log:
//!
//! * **Parse → print → parse fixpoint** — printing a parsed statement and
//!   re-parsing the printed text must converge after one round (the second
//!   print equals the first) and must preserve the template fingerprint.
//! * **Skeleton invariance** — whitespace inflation, case flipping,
//!   comment insertion and literal substitution are all identity
//!   transformations for the query *template* ([`QueryTemplate`]
//!   fingerprint) and for the raw parse-cache key ([`RawKey`]).
//!   Perturbations are literal-aware: string-literal bytes are never
//!   touched, so every perturbed statement means the same thing.
//! * **Session-shift invariance** — shifting each user's clock by a
//!   per-user constant reorders sessions globally but preserves every
//!   per-user gap, so per-class detection counts and the clean/removal log
//!   sizes must not move.

use sqlog_catalog::Catalog;
use sqlog_core::Pipeline;
use sqlog_log::{QueryLog, Timestamp};
use sqlog_skeleton::{raw_shape_scan, QueryTemplate, RawLiteral, RawLiteralKind};
use sqlog_sql::parse_statement;
use std::collections::BTreeMap;

/// At most this many distinct statements are sampled per run.
const SAMPLE_LIMIT: usize = 300;

/// Outcome of the metamorphic checks.
#[derive(Debug, Clone, Default)]
pub struct MetamorphicReport {
    /// Statements put through the parse→print→parse fixpoint check.
    pub fixpoint_checked: usize,
    /// (statement, perturbation) pairs put through skeleton invariance.
    pub skeleton_checked: usize,
    /// Statements skipped by the skeleton check because their raw shape is
    /// unkeyable (unterminated strings/comments/quoted identifiers, bare
    /// `@`) — byte-level perturbation is unsafe without literal spans.
    pub skeleton_skipped: usize,
    /// Whether the session-shift pipeline comparison ran.
    pub shift_checked: bool,
    /// Human-readable description of every violated invariant.
    pub failures: Vec<String>,
}

impl MetamorphicReport {
    /// Number of violated invariants.
    pub fn failure_count(&self) -> usize {
        self.failures.len()
    }

    /// Did every invariant hold?
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs all metamorphic checks over a log.
pub fn check_invariants(log: &QueryLog, catalog: &Catalog, seed: u64) -> MetamorphicReport {
    let mut report = MetamorphicReport::default();
    for sql in sample_statements(log) {
        check_fixpoint(sql, &mut report);
        check_skeleton_invariance(sql, &mut report);
    }
    check_session_shift(log, catalog, seed, &mut report);
    report
}

/// Distinct statements of the log, in first-appearance order, strided down
/// to at most [`SAMPLE_LIMIT`].
fn sample_statements(log: &QueryLog) -> Vec<&str> {
    let mut seen = std::collections::HashSet::new();
    let distinct: Vec<&str> = log
        .entries
        .iter()
        .map(|e| e.statement.as_str())
        .filter(|s| seen.insert(*s))
        .collect();
    let stride = distinct.len().div_ceil(SAMPLE_LIMIT).max(1);
    distinct.into_iter().step_by(stride).collect()
}

fn fingerprint_of(sql: &str) -> Option<(sqlog_skeleton::Fingerprint, QueryTemplate)> {
    let stmt = parse_statement(sql).ok()?;
    let q = stmt.as_select()?;
    let t = QueryTemplate::of_query(q);
    Some((t.fingerprint, t))
}

/// Parse → print → parse: one round reaches the fixpoint, and the printed
/// form keeps the template.
fn check_fixpoint(sql: &str, report: &mut MetamorphicReport) {
    let Ok(stmt) = parse_statement(sql) else {
        return; // planted Malformed noise; nothing to round-trip
    };
    if stmt.as_select().is_none() {
        // Non-SELECT kinds are recognized but not printable — the pipeline
        // only rewrites SELECTs, so only those need to round-trip.
        return;
    }
    report.fixpoint_checked += 1;
    let printed = stmt.to_string();
    let reparsed = match parse_statement(&printed) {
        Ok(s) => s,
        Err(e) => {
            report
                .failures
                .push(format!("printed form of {sql:?} fails to re-parse: {e}"));
            return;
        }
    };
    let printed_again = reparsed.to_string();
    if printed_again != printed {
        report.failures.push(format!(
            "print is not a fixpoint for {sql:?}: {printed:?} vs {printed_again:?}"
        ));
        return;
    }
    if let (Some(a), Some(b)) = (stmt.as_select(), reparsed.as_select()) {
        let (ta, tb) = (QueryTemplate::of_query(a), QueryTemplate::of_query(b));
        if !ta.similar(&tb) || ta.fingerprint != tb.fingerprint {
            report.failures.push(format!(
                "printing changed the template of {sql:?}: {:?} vs {:?}",
                ta.full, tb.full
            ));
        }
    }
}

/// Whitespace / case / comment / literal perturbations preserve the
/// template fingerprint and the raw cache key.
fn check_skeleton_invariance(sql: &str, report: &mut MetamorphicReport) {
    let Some((base_fp, _)) = fingerprint_of(sql) else {
        return; // non-SELECT or malformed: no template to preserve
    };
    let mut literals = Vec::new();
    let Some(base_key) = raw_shape_scan(sql, &mut literals) else {
        // No raw key means no reliable literal spans, and byte-level
        // perturbation is not safe without them.
        report.skeleton_skipped += 1;
        return;
    };
    let perturbed = [
        ("whitespace", inflate_whitespace(sql, &literals)),
        ("case", flip_case(sql, &literals)),
        ("comment", wrap_in_comments(sql)),
        ("literal", remap_number_literals(sql, &literals)),
    ];
    for (name, variant) in perturbed {
        report.skeleton_checked += 1;
        let literal_variant = name == "literal";
        match fingerprint_of(&variant) {
            None => report.failures.push(format!(
                "{name} perturbation broke parsing: {sql:?} -> {variant:?}"
            )),
            // Literal substitution changes constants, never the template.
            Some((fp, _)) if fp != base_fp => report.failures.push(format!(
                "{name} perturbation changed the template fingerprint: \
                 {sql:?} -> {variant:?}"
            )),
            Some(_) => {}
        }
        let mut scratch = Vec::new();
        match raw_shape_scan(&variant, &mut scratch) {
            None => report.failures.push(format!(
                "{name} perturbation made the raw key uncacheable: {variant:?}"
            )),
            Some(key) if key != base_key => report.failures.push(format!(
                "{name} perturbation changed the raw cache key: {sql:?} -> {variant:?}"
            )),
            Some(_) => {}
        }
        if literal_variant {
            // Literal spans must still be found at matching positions-in-kind.
            if scratch.len() != literals.len() {
                report.failures.push(format!(
                    "literal perturbation changed the literal count of {sql:?}"
                ));
            }
        }
    }
}

fn string_spans(literals: &[RawLiteral]) -> Vec<(usize, usize)> {
    literals
        .iter()
        .filter(|l| matches!(l.kind, RawLiteralKind::String { .. }))
        .map(|l| (l.start as usize, l.end as usize))
        .collect()
}

fn in_spans(spans: &[(usize, usize)], i: usize) -> bool {
    spans.iter().any(|&(s, e)| i >= s && i < e)
}

/// Doubles every space outside string literals and appends trailing blanks.
fn inflate_whitespace(sql: &str, literals: &[RawLiteral]) -> String {
    let spans = string_spans(literals);
    let mut out = String::with_capacity(sql.len() * 2);
    for (i, c) in sql.char_indices() {
        out.push(c);
        if c == ' ' && !in_spans(&spans, i) {
            out.push_str(" \t ");
        }
    }
    out.push_str("  ");
    out
}

/// Flips the case of every ASCII letter outside string literals. Safe
/// because a successful [`raw_shape_scan`] guarantees there are no quoted
/// identifiers in the statement.
fn flip_case(sql: &str, literals: &[RawLiteral]) -> String {
    let spans = string_spans(literals);
    sql.char_indices()
        .map(|(i, c)| {
            if in_spans(&spans, i) {
                c
            } else if c.is_ascii_lowercase() {
                c.to_ascii_uppercase()
            } else if c.is_ascii_uppercase() {
                c.to_ascii_lowercase()
            } else {
                c
            }
        })
        .collect()
}

/// Prefixes and suffixes the statement with line comments.
fn wrap_in_comments(sql: &str) -> String {
    format!("-- metamorphic head\n{sql}\n-- metamorphic tail")
}

/// Is the number starting at byte `start` a CAST type size (`DECIMAL(10,2)`)
/// rather than a data literal? Type sizes are part of the query *template*
/// (the skeleton renders the full type name), so substituting them is not an
/// identity transformation and they must be left alone.
fn is_cast_type_size(sql: &[u8], start: usize) -> bool {
    let ws = |b: u8| matches!(b, b' ' | b'\t' | b'\r' | b'\n');
    let word = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut i = start;
    // Left over the size list (digits, commas, blanks) to an opening paren.
    while i > 0 && (sql[i - 1].is_ascii_digit() || sql[i - 1] == b',' || ws(sql[i - 1])) {
        i -= 1;
    }
    if i == 0 || sql[i - 1] != b'(' {
        return false;
    }
    i -= 1;
    while i > 0 && ws(sql[i - 1]) {
        i -= 1;
    }
    // The type name, then the `AS` keyword before it.
    let name_end = i;
    while i > 0 && word(sql[i - 1]) {
        i -= 1;
    }
    if i == name_end {
        return false;
    }
    while i > 0 && ws(sql[i - 1]) {
        i -= 1;
    }
    i >= 2 && sql[i - 2..i].eq_ignore_ascii_case(b"as") && (i == 2 || !word(sql[i - 3]))
}

/// Rewrites every digit of every number literal to a different digit,
/// producing different — but still valid — constants. CAST type sizes are
/// not literals (see [`is_cast_type_size`]) and stay untouched.
fn remap_number_literals(sql: &str, literals: &[RawLiteral]) -> String {
    let number_spans: Vec<(usize, usize)> = literals
        .iter()
        .filter(|l| l.kind == RawLiteralKind::Number)
        .filter(|l| !is_cast_type_size(sql.as_bytes(), l.start as usize))
        .map(|l| (l.start as usize, l.end as usize))
        .collect();
    sql.char_indices()
        .map(|(i, c)| {
            if in_spans(&number_spans, i) && c.is_ascii_digit() {
                // 0..=4 shift up, 5..=9 shift down: stays one digit and the
                // huge SkyServer object ids stay within i64.
                let d = c as u8 - b'0';
                let mapped = if d < 5 { d + 1 } else { d - 1 };
                (b'0' + mapped) as char
            } else {
                c
            }
        })
        .collect()
}

/// A deterministic per-user clock shift (whole minutes, up to ~3 days) that
/// preserves all intra-user gaps.
fn user_shift_ms(user: &str, seed: u64) -> i64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for b in user.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    ((h % 4_320) * 60_000) as i64
}

/// Runs the pipeline on the original and the per-user time-shifted log and
/// compares detection counts and output sizes.
fn check_session_shift(
    log: &QueryLog,
    catalog: &Catalog,
    seed: u64,
    report: &mut MetamorphicReport,
) {
    let mut shifted = log.clone();
    for e in &mut shifted.entries {
        let user = e.user.as_deref().unwrap_or("");
        e.timestamp = Timestamp::from_millis(e.timestamp.0 + user_shift_ms(user, seed));
    }
    let base = Pipeline::new(catalog).run(log);
    let moved = Pipeline::new(catalog).run(&shifted);
    report.shift_checked = true;

    let counts = |r: &sqlog_core::PipelineResult| -> BTreeMap<String, (usize, usize)> {
        r.stats
            .per_class
            .iter()
            .map(|(k, c)| (k.clone(), (c.instances, c.queries)))
            .collect()
    };
    if counts(&base) != counts(&moved) {
        report.failures.push(format!(
            "session shift changed per-class counts: {:?} vs {:?}",
            counts(&base),
            counts(&moved)
        ));
    }
    if base.stats.final_size != moved.stats.final_size
        || base.stats.removal_size != moved.stats.removal_size
    {
        report.failures.push(format!(
            "session shift changed output sizes: final {} -> {}, removal {} -> {}",
            base.stats.final_size,
            moved.stats.final_size,
            base.stats.removal_size,
            moved.stats.removal_size
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlog_catalog::skyserver_catalog;
    use sqlog_gen::{generate, GenConfig};

    #[test]
    fn perturbations_change_bytes_but_not_shape() {
        let sql = "SELECT name, dept FROM Employee WHERE empId = 8 AND note = 'a b'";
        let mut lits = Vec::new();
        raw_shape_scan(sql, &mut lits).expect("cacheable");
        let ws = inflate_whitespace(sql, &lits);
        let case = flip_case(sql, &lits);
        let lit = remap_number_literals(sql, &lits);
        assert_ne!(ws, sql);
        assert_ne!(case, sql);
        assert_ne!(lit, sql);
        // The string literal is untouched by all of them.
        for v in [&ws, &case, &lit] {
            assert!(v.contains("'a b'"), "{v}");
        }
        assert!(lit.contains("= 7"), "{lit}"); // 8 -> 7
    }

    #[test]
    fn cast_type_sizes_are_not_literals() {
        let sql = "SELECT CAST(ra AS DECIMAL(10,2)) FROM photoprimary WHERE objid = 42";
        let mut lits = Vec::new();
        raw_shape_scan(sql, &mut lits).unwrap();
        let out = remap_number_literals(sql, &lits);
        // Type sizes are template, not data: they must survive unchanged
        // while the real constant moves.
        assert!(out.contains("DECIMAL(10,2)"), "{out}");
        assert!(out.contains("= 53"), "{out}"); // 42 -> 53
    }

    #[test]
    fn invariants_hold_on_a_generated_log() {
        let catalog = skyserver_catalog();
        let log = generate(&GenConfig::with_scale(800, 5));
        let report = check_invariants(&log, &catalog, 5);
        assert!(report.passed(), "{:#?}", report.failures);
        assert!(report.fixpoint_checked > 0);
        assert!(report.skeleton_checked > 0);
        assert!(report.shift_checked);
    }

    #[test]
    fn a_broken_printer_would_be_caught() {
        // Sanity: the fixpoint check actually fires on a non-fixpoint pair.
        let mut report = MetamorphicReport::default();
        check_fixpoint("SELECT a FROM t WHERE x = 1", &mut report);
        assert_eq!(report.fixpoint_checked, 1);
        assert!(report.passed());
    }
}
