//! Fast conformance smoke: the full harness at small scale, fixed seeds.
//! CI runs this on every push; `sqlog-conform` runs the same suite at
//! arbitrary scale from the command line.

use sqlog_conformance::{run_conformance, ConformanceConfig};

#[test]
fn full_suite_passes_at_seed_42() {
    let report = run_conformance(&ConformanceConfig {
        seed: 42,
        cases: 200,
        oracle: true,
        db_rows: 800,
        ..ConformanceConfig::default()
    });
    assert!(report.passed(), "failures: {:#?}", report.failures());
    assert_eq!(report.differential.legs, 25); // 24 matrix legs + the resumed leg
    assert!(report.differential.hostile_lines > 0);
    assert_eq!(report.recall.recall(), 1.0);
    let oracle = report.oracle.expect("oracle ran");
    assert!(oracle.pairs > 0, "no rewrites to check");
    assert!(
        oracle.nonempty > 0,
        "oracle never saw a non-empty result set"
    );
    assert!(report.metamorphic.fixpoint_checked > 0);
    assert!(report.metamorphic.shift_checked);
}

#[test]
fn suite_passes_at_a_second_seed_without_oracle() {
    let report = run_conformance(&ConformanceConfig {
        seed: 7,
        cases: 150,
        oracle: false,
        ..ConformanceConfig::default()
    });
    assert!(report.passed(), "failures: {:#?}", report.failures());
    assert!(report.oracle.is_none());
    assert_eq!(report.recall.recall(), 1.0);
}

#[test]
fn report_json_round_trips_through_the_obs_parser() {
    let report = run_conformance(&ConformanceConfig {
        seed: 3,
        cases: 60,
        oracle: false,
        ..ConformanceConfig::default()
    });
    let rendered = report.to_json().render();
    let parsed = sqlog_obs::Json::parse(&rendered).expect("valid JSON");
    assert_eq!(parsed.get("schema"), Some(&sqlog_obs::Json::U64(1)));
    assert_eq!(
        parsed.get("passed"),
        Some(&sqlog_obs::Json::Bool(report.passed()))
    );
    assert!(parsed.get("recall").is_some());
}
