//! Quarantine sidecar round-trips under generated hostile logs.
//!
//! The lenient ingest promises that quarantined lines are copied to the
//! sidecar *byte-verbatim*, terminator included, so concatenating the
//! re-serialized good entries with the sidecar loses nothing. These tests
//! drive that contract with the same generator + hostile injection the
//! differential matrix uses, instead of hand-picked bad lines.

use sqlog_conformance::differential::{inject_hostile, HOSTILE_LINES};
use sqlog_gen::{generate, GenConfig};
use sqlog_log::{read_log_with, write_log, IngestPolicy, QueryLog};
use std::io::Cursor;

fn hostile_bytes(seed: u64, cases: usize) -> (QueryLog, Vec<u8>, Vec<u8>, usize) {
    let log = generate(&GenConfig::with_scale(cases, seed));
    let mut clean = Vec::new();
    write_log(&log, &mut clean).unwrap();
    let (hostile, injected) = inject_hostile(&clean);
    (log, clean, hostile, injected)
}

#[test]
fn sidecar_captures_exactly_the_injected_lines() {
    let (log, _, hostile, injected) = hostile_bytes(42, 300);
    let mut sidecar = Vec::new();
    let (ingested, stats) = read_log_with(
        Cursor::new(&hostile),
        IngestPolicy::Lenient,
        Some(&mut sidecar),
    )
    .unwrap();

    assert_eq!(stats.quarantined, injected);
    assert_eq!(stats.entries, log.len());
    assert_eq!(stats.lines, stats.entries + stats.quarantined);
    assert!(stats.invalid_utf8 >= 1, "{stats:?}");
    assert_eq!(stats.malformed + stats.invalid_utf8, stats.quarantined);
    assert_eq!(ingested.len(), log.len());

    // The sidecar is exactly the injected hostile lines, in injection order,
    // byte-verbatim.
    let expected: Vec<u8> = (0..injected)
        .flat_map(|i| HOSTILE_LINES[i % HOSTILE_LINES.len()].to_vec())
        .collect();
    assert_eq!(sidecar, expected);
}

#[test]
fn good_entries_plus_sidecar_reassemble_the_input() {
    // Byte-conservation: re-serializing the ingested entries and appending
    // the sidecar yields a multiset of lines equal to the hostile input —
    // nothing is dropped, altered, or invented.
    let (_, _, hostile, _) = hostile_bytes(7, 200);
    let mut sidecar = Vec::new();
    let (ingested, _) = read_log_with(
        Cursor::new(&hostile),
        IngestPolicy::Lenient,
        Some(&mut sidecar),
    )
    .unwrap();
    let mut reserialized = Vec::new();
    write_log(&ingested, &mut reserialized).unwrap();

    let lines = |bytes: &[u8]| {
        let mut v: Vec<Vec<u8>> = bytes
            .split_inclusive(|&b| b == b'\n')
            .map(|l| l.to_vec())
            .collect();
        v.sort();
        v
    };
    let mut reassembled = reserialized;
    reassembled.extend_from_slice(&sidecar);
    assert_eq!(lines(&reassembled), lines(&hostile));
}

#[test]
fn sidecar_preserves_crlf_and_terminatorless_tails() {
    // Append two more damaged lines to a generated log: one CRLF-terminated,
    // one with no terminator at all (EOF mid-line). Both must land in the
    // sidecar with their original endings.
    let (_, clean, _, _) = hostile_bytes(3, 50);
    let mut input = clean.clone();
    input.extend_from_slice(b"crlf damaged line\r\n");
    input.extend_from_slice(b"tail with no terminator");

    let mut sidecar = Vec::new();
    let (_, stats) = read_log_with(
        Cursor::new(&input),
        IngestPolicy::Lenient,
        Some(&mut sidecar),
    )
    .unwrap();
    assert_eq!(stats.quarantined, 2);
    assert_eq!(
        sidecar,
        b"crlf damaged line\r\ntail with no terminator".to_vec()
    );
}

#[test]
fn requarantined_sidecar_is_a_fixpoint() {
    // Re-ingesting the sidecar quarantines every line again and reproduces
    // the sidecar byte-for-byte: repair tooling can loop safely.
    let (_, _, hostile, injected) = hostile_bytes(11, 150);
    let mut sidecar = Vec::new();
    read_log_with(
        Cursor::new(&hostile),
        IngestPolicy::Lenient,
        Some(&mut sidecar),
    )
    .unwrap();

    let mut second = Vec::new();
    let (relog, restats) = read_log_with(
        Cursor::new(&sidecar),
        IngestPolicy::Lenient,
        Some(&mut second),
    )
    .unwrap();
    assert_eq!(relog.len(), 0);
    assert_eq!(restats.quarantined, injected);
    assert_eq!(second, sidecar);
}

#[test]
fn strict_ingest_rejects_the_hostile_bytes_lenient_accepts() {
    let (log, _, hostile, _) = hostile_bytes(5, 100);
    assert!(read_log_with(Cursor::new(&hostile), IngestPolicy::Strict, None).is_err());
    let (ingested, _) = read_log_with(Cursor::new(&hostile), IngestPolicy::Lenient, None).unwrap();
    assert_eq!(ingested.len(), log.len());
}
