//! Replays the committed seed corpus (`corpus/*.tsv`): minimized
//! adversarial logs that once exposed (or nearly exposed) a bug. Each one
//! runs the full differential matrix, the metamorphic invariants, recall
//! scoring against its embedded truth labels and the minidb oracle, so a
//! regression on any of them stays fixed.

use sqlog_catalog::skyserver_catalog;
use sqlog_conformance::{differential, metamorphic, oracle, recall};
use sqlog_gen::TruthSidecar;
use sqlog_log::{read_log_with, IngestPolicy, QueryLog};
use sqlog_minidb::datagen::skyserver_db;
use std::path::Path;

fn corpus_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/corpus"))
}

fn load(name: &str) -> QueryLog {
    let bytes = std::fs::read(corpus_dir().join(name)).unwrap_or_else(|e| panic!("{name}: {e}"));
    let (log, stats) = read_log_with(std::io::Cursor::new(bytes), IngestPolicy::Strict, None)
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    assert_eq!(stats.quarantined, 0, "{name}: corpus files are well-formed");
    log
}

/// One corpus file through the whole suite; returns the reference result.
fn replay(name: &str) -> sqlog_core::PipelineResult {
    let catalog = skyserver_catalog();
    let log = load(name);
    let truth = TruthSidecar::derive(&log);

    let (reference, diff) = differential::run_matrix(&log, &catalog);
    assert!(diff.passed(), "{name} differential: {:#?}", diff.mismatches);

    let rec = recall::score_recall(&truth, &reference);
    assert!(rec.passed(), "{name} recall: {:#?}", rec.missed);

    let meta = metamorphic::check_invariants(&log, &catalog, 1);
    assert!(meta.passed(), "{name} metamorphic: {:#?}", meta.failures);

    let db = skyserver_db(50, 7);
    let orc = oracle::check_rewrites(&db, &reference.rewrites);
    assert!(orc.passed(), "{name} oracle: {:#?}", orc.mismatches);

    reference
}

#[test]
fn dw_run_overlapping_a_cth_source() {
    let r = replay("dw_cth_overlap.tsv");
    assert!(r.stats.per_class.contains_key("DW-Stifle"));
    assert!(r.stats.per_class.contains_key("CTH"));
    assert!(r
        .rewrites
        .iter()
        .any(|rw| rw.class.label() == "DW-Stifle" && rw.original_statements.len() == 3));
}

#[test]
fn ds_projection_split() {
    let r = replay("ds_projection_split.tsv");
    assert!(r.stats.per_class.contains_key("DS-Stifle"));
}

#[test]
fn df_same_constant_two_tables() {
    let r = replay("df_two_tables.tsv");
    assert!(r.stats.per_class.contains_key("DF-Stifle"));
}

#[test]
fn snc_never_true_predicates() {
    let r = replay("snc_never_true.tsv");
    assert_eq!(r.stats.per_class["SNC"].instances, 2);
    // The untouched `type <> 6` query must NOT be flagged.
    assert!(r
        .clean_log
        .entries
        .iter()
        .any(|e| e.statement.contains("type <> 6")));
}

#[test]
fn uncacheable_shapes_survive_every_leg() {
    // Escaped strings, CAST type-size literals, block comments and quoted
    // identifiers: all uncacheable for the raw parse-cache key, all still
    // byte-identical across cache on/off and thread counts.
    let catalog = skyserver_catalog();
    let log = load("uncacheable_shapes.tsv");
    let (_, diff) = differential::run_matrix(&log, &catalog);
    assert!(diff.passed(), "{:#?}", diff.mismatches);
    let meta = metamorphic::check_invariants(&log, &catalog, 1);
    assert!(meta.passed(), "{:#?}", meta.failures);
    assert!(meta.skeleton_checked > 0);
}
