//! Quickstart: clean the paper's running example (Table 1 → Table 3).
//!
//! Run with `cargo run --example quickstart`.

use sqlog::catalog::skyserver_catalog;
use sqlog::core::{render_statistics, Pipeline};
use sqlog::logmodel::{LogEntry, QueryLog, Timestamp};

fn main() {
    // The sequence of statements from Table 1 of the paper (with the
    // parsed-log spelling of Table 2), plus a web-form reload duplicate.
    let statements = [
        "SELECT E.Id FROM Employees E WHERE E.department = 'sales'",
        "SELECT E.name, E.surname FROM Employees E WHERE E.id = 12",
        "SELECT E.name, E.surname FROM Employees E WHERE E.id = 12", // reload
        "SELECT E.name, E.surname FROM Employees E WHERE E.id = 15",
        "SELECT E.name, E.surname FROM Employees E WHERE E.id = 16",
    ];
    // The reload arrives 400 ms after the original — inside the 1 s
    // duplicate threshold; everything else is seconds apart.
    let times_ms = [0i64, 2_000, 2_400, 6_000, 8_000];
    let log = QueryLog::from_entries(
        statements
            .iter()
            .zip(times_ms)
            .enumerate()
            .map(|(i, (stmt, ms))| {
                LogEntry::minimal(i as u64, *stmt, Timestamp::from_millis(ms)).with_user("10.0.0.1")
            })
            .collect(),
    );

    println!("original log ({} statements):", log.len());
    for e in &log.entries {
        println!("  [{}] {}", e.timestamp, e.statement);
    }

    // The catalog tells Def. 11 that `id` is a key of Employees.
    let catalog = skyserver_catalog();
    let result = Pipeline::new(&catalog).run(&log);

    println!("\nclean log ({} statements):", result.clean_log.len());
    for e in &result.clean_log.entries {
        println!("  [{}] {}", e.timestamp, e.statement);
    }

    println!("\ndetected antipattern instances:");
    for (inst, ids) in result.instances.iter().zip(&result.instance_entry_ids) {
        println!(
            "  {:<10} covering log entries {:?} (solvable: {})",
            inst.class.to_string(),
            ids,
            inst.solvable
        );
    }

    // The paper's Table 2: every statement with its antipattern tags.
    println!("\nparsed log with antipattern tags (Table 2 of the paper):");
    let tags = result.entry_tags();
    for e in &log.entries {
        let tag_text = tags.get(&e.id).map_or(String::new(), |ts| {
            ts.iter()
                .map(|c| c.label().to_string())
                .collect::<Vec<_>>()
                .join(", ")
        });
        println!("  {} [{:<22}] {}", e.id, tag_text, e.statement);
    }

    println!("\nstatistics:\n{}", render_statistics(&result.stats));
}
