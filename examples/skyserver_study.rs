//! The SkyServer case study in miniature (§6 of the paper).
//!
//! Generates a synthetic SkyServer-like log, runs the cleaning pipeline and
//! prints the Table 5/6/7-style summaries. Pass a scale as the first
//! argument (default 50 000 statements).
//!
//! Run with `cargo run --release --example skyserver_study -- 100000`.

use sqlog::catalog::skyserver_catalog;
use sqlog::core::{render_pattern_table, render_statistics, top_patterns, Pipeline};
use sqlog::gen::{generate, GenConfig};

fn main() {
    let scale: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(50_000);
    let seed = 42;

    eprintln!("generating a synthetic SkyServer-like log ({scale} statements)…");
    let log = generate(&GenConfig::with_scale(scale, seed));

    eprintln!("running the cleaning pipeline…");
    let catalog = skyserver_catalog();
    let result = Pipeline::new(&catalog).run(&log);

    println!("== results overview (Table 5 analogue) ==");
    println!("{}", render_statistics(&result.stats));

    println!("== most popular patterns, raw log (antipatterns marked) ==");
    let rows = top_patterns(&result.mined, &result.marks, &result.store, 15, 2);
    println!("{}", render_pattern_table(&rows));
    let antipatterns = rows.iter().filter(|r| r.class.is_some()).count();
    println!("→ {antipatterns} antipatterns among the top 15 (the paper found 6).\n");

    println!("== most popular patterns after cleaning (Table 7 analogue) ==");
    let clean_result = Pipeline::new(&catalog).run(&result.clean_log);
    let clean_rows = top_patterns(
        &clean_result.mined,
        &clean_result.marks,
        &clean_result.store,
        15,
        2,
    );
    println!("{}", render_pattern_table(&clean_rows));

    println!(
        "log sizes: raw {} → deduplicated {} → clean {} ({:.1}% of raw)",
        result.stats.original_size,
        result.stats.after_dedup,
        result.stats.final_size,
        result.stats.pct_of_original(result.stats.final_size),
    );
}
