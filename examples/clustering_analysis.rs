//! Downstream analysis (§6.9): user-interest clustering on the raw, cleaned
//! and removal logs.
//!
//! Run with `cargo run --release --example clustering_analysis -- 20000`.

use sqlog::catalog::skyserver_catalog;
use sqlog::cluster::cluster_statements;
use sqlog::core::Pipeline;
use sqlog::gen::{generate, GenConfig};
use sqlog::logmodel::QueryLog;
use std::time::Instant;

fn analyze(name: &str, log: &QueryLog, threshold: f64) {
    let start = Instant::now();
    let (clustering, _) =
        cluster_statements(log.entries.iter().map(|e| e.statement.as_str()), threshold);
    let elapsed = start.elapsed();
    let sizes = clustering.sizes();
    let top: Vec<String> = sizes.iter().take(8).map(u64::to_string).collect();
    println!(
        "{name:<8} {:>7} queries → {:>5} clusters, avg size {:>8.1}, \
         top sizes [{}], {:.2}s",
        log.len(),
        clustering.count(),
        clustering.average_size(),
        top.join(", "),
        elapsed.as_secs_f64(),
    );
}

fn main() {
    let scale: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20_000);

    eprintln!("generating log and running the pipeline (scale {scale})…");
    let log = generate(&GenConfig::with_scale(scale, 7));
    let catalog = skyserver_catalog();
    let result = Pipeline::new(&catalog).run(&log);

    println!("threshold 0.9 (the paper's Fig. 4 setting):");
    analyze("raw", &log, 0.9);
    analyze("clean", &result.clean_log, 0.9);
    analyze("removal", &result.removal_log, 0.9);

    println!(
        "\nThe raw log fragments into many small clusters driven by \
         antipattern noise;\ncleaning merges the stifle follow-ups, and \
         removal leaves only genuine\nuser-interest clusters — the paper's \
         Fig. 3/4 finding."
    );
}
