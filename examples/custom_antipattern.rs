//! Extending the framework with a custom antipattern (§5.4 of the paper).
//!
//! The paper walks through adding "Searching Nullable Columns"; that one is
//! built in, so this example adds another classic from Karwin's *SQL
//! Antipatterns*: **Implicit Columns** (`SELECT *`). Detection flags every
//! wildcard projection; the solving rule expands `*` into the table's
//! explicit column list using the schema catalog.
//!
//! Run with `cargo run --example custom_antipattern`.

use sqlog::catalog::{skyserver_catalog, Catalog};
use sqlog::core::{
    AntipatternClass, AntipatternInstance, DetectCtx, Detector, ExtensionRegistry, Pipeline, Solver,
};
use sqlog::logmodel::{LogEntry, QueryLog, Timestamp};
use sqlog::sql::ast::{ObjectName, SelectItem, Statement};
use sqlog::sql::parse_statement;

/// Detects `SELECT *` on a known single table.
struct ImplicitColumnsDetector;

impl Detector for ImplicitColumnsDetector {
    fn name(&self) -> &str {
        "implicit-columns"
    }

    fn detect(&self, ctx: &DetectCtx<'_>) -> Vec<AntipatternInstance> {
        let mut out = Vec::new();
        // Session-local scan, as the `DetectCtx` contract requires: the
        // pipeline shards detection by session range, so iterating
        // `ctx.records` directly would double-count across shards.
        for session in ctx.sessions {
            for &ri in &session.records {
                let rec = &ctx.records[ri];
                // Only solvable when the table (and thus the column list)
                // is known to the catalog.
                let solvable = rec
                    .primary_table
                    .as_deref()
                    .is_some_and(|t| ctx.catalog.table(t).is_some());
                if rec.output.wildcard && rec.output.names.is_empty() {
                    out.push(AntipatternInstance {
                        class: AntipatternClass::Custom("ImplicitColumns".into()),
                        records: vec![ri],
                        identity: vec![rec.template],
                        marker_keys: vec![vec![rec.template]],
                        solvable,
                    });
                }
            }
        }
        out
    }
}

/// Expands `*` into the catalog's column list.
struct ImplicitColumnsSolver;

impl Solver for ImplicitColumnsSolver {
    fn name(&self) -> &str {
        "implicit-columns"
    }

    fn solve(&self, inst: &AntipatternInstance, ctx: &DetectCtx<'_>) -> Option<Vec<String>> {
        let ri = *inst.records.first()?;
        let rec = &ctx.records[ri];
        let table = ctx.catalog.table(rec.primary_table.as_deref()?)?;
        let entry = ctx.log.entry(rec.entry_idx as usize);
        let Statement::Select(mut q) = parse_statement(&entry.statement).ok()? else {
            return None;
        };
        let explicit: Vec<SelectItem> = table
            .columns
            .iter()
            .map(|c| SelectItem::column(ObjectName::simple(c.name.clone())))
            .collect();
        q.body.projection = q
            .body
            .projection
            .into_iter()
            .flat_map(|item| match item {
                SelectItem::Wildcard => explicit.clone(),
                other => vec![other],
            })
            .collect();
        Some(vec![q.to_string()])
    }
}

fn run(catalog: &Catalog, log: &QueryLog) {
    let detector = ImplicitColumnsDetector;
    let solver = ImplicitColumnsSolver;
    let extensions = ExtensionRegistry::new()
        .with_detector(&detector)
        .with_solver("ImplicitColumns", &solver);
    let result = Pipeline::new(catalog).with_extensions(extensions).run(log);

    println!("clean log:");
    for e in &result.clean_log.entries {
        println!("  {}", e.statement);
    }
    println!("\ninstances:");
    for inst in &result.instances {
        println!(
            "  {:<16} solvable: {}",
            inst.class.to_string(),
            inst.solvable
        );
    }
}

fn main() {
    let catalog = skyserver_catalog();
    let log = QueryLog::from_entries(vec![
        LogEntry::minimal(
            0,
            "SELECT * FROM dbobjects WHERE rank > 3",
            Timestamp::from_secs(0),
        )
        .with_user("u"),
        LogEntry::minimal(
            1,
            "SELECT name FROM dbobjects WHERE rank > 3",
            Timestamp::from_secs(60),
        )
        .with_user("u"),
        // A wildcard on an unknown table: detected but unsolvable.
        LogEntry::minimal(
            2,
            "SELECT * FROM mystery_table WHERE x = 1",
            Timestamp::from_secs(120),
        )
        .with_user("u"),
    ]);
    run(&catalog, &log);
}
