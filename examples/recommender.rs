//! The paper's §7 future-work scenario as an API walkthrough: train a
//! next-query recommender on the raw log and on the cleaned log, and watch
//! the antipattern suggestions disappear.
//!
//! Run with `cargo run --release --example recommender -- 30000`.

use sqlog::catalog::skyserver_catalog;
use sqlog::core::{
    build_sessions, parse_log, top_patterns, Pipeline, PipelineConfig, Recommender, TemplateStore,
};
use sqlog::gen::{generate, GenConfig};
use sqlog::logmodel::QueryLog;

fn show_suggestions(title: &str, log: &QueryLog, anti_skeletons: &[String]) {
    let store = TemplateStore::new();
    let parsed = parse_log(log, &store, 0);
    let cfg = PipelineConfig::default();
    let sessions = build_sessions(log, &parsed.records, cfg.session_gap_ms);
    let recommender = Recommender::train(&sessions, &parsed.records);

    // Take the most common source templates and show their top suggestion.
    let mut sources: Vec<_> = recommender.sources().collect();
    sources.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    println!("{title}");
    for (current, weight) in sources.into_iter().take(5) {
        let current_text = store.with(current, |t| t.full.clone());
        let suggestion = recommender.recommend(current, 1).first().map(|&t| {
            let text = store.with(t, |t| t.full.clone());
            let is_anti = anti_skeletons.contains(&text);
            (text, is_anti)
        });
        let short = |s: &str| s.chars().take(58).collect::<String>();
        match suggestion {
            Some((text, is_anti)) => println!(
                "  after [{}×] {}…\n    suggest {} {}…",
                weight,
                short(&current_text),
                if is_anti {
                    "⚠ ANTIPATTERN"
                } else {
                    "        "
                },
                short(&text),
            ),
            None => println!(
                "  after [{}×] {}… (no suggestion)",
                weight,
                short(&current_text)
            ),
        }
    }
    println!();
}

fn main() {
    let scale: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(30_000);
    eprintln!("generating log and running the pipeline (scale {scale})…");
    let log = generate(&GenConfig::with_scale(scale, 11));
    let catalog = skyserver_catalog();
    let result = Pipeline::new(&catalog).run(&log);

    // Skeletons of the antipattern-marked unigram patterns.
    let anti_skeletons: Vec<String> =
        top_patterns(&result.mined, &result.marks, &result.store, 500, 1)
            .into_iter()
            .filter(|r| r.key.len() == 1 && r.class.is_some())
            .map(|r| r.skeletons[0].clone())
            .collect();

    show_suggestions("trained on the RAW log:", &log, &anti_skeletons);
    show_suggestions(
        "trained on the CLEAN log:",
        &result.clean_log,
        &anti_skeletons,
    );
}
