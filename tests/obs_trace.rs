//! Recorder wiring through the pipeline, in process: span nesting must be
//! correct at every thread count, and instrumentation must only *observe* —
//! the pipeline's output is byte-identical with the recorder enabled or
//! disabled, at every thread count.

use sqlog::catalog::skyserver_catalog;
use sqlog::core::{Pipeline, PipelineConfig, PipelineResult};
use sqlog::gen::{generate, GenConfig};
use sqlog::logmodel::write_log;
use sqlog::obs::Recorder;
use std::collections::HashMap;

/// Thread counts the satellite task pins down: 1, 2, 8 and auto (0).
const THREADS: &[usize] = &[1, 2, 8, 0];

fn rendered_logs(result: &PipelineResult) -> (Vec<u8>, Vec<u8>) {
    let mut clean = Vec::new();
    write_log(&result.clean_log, &mut clean).expect("render clean log");
    let mut removal = Vec::new();
    write_log(&result.removal_log, &mut removal).expect("render removal log");
    (clean, removal)
}

#[test]
fn span_nesting_is_correct_at_every_thread_count() {
    let catalog = skyserver_catalog();
    let log = generate(&GenConfig::with_scale(1_500, 13));
    for &threads in THREADS {
        let rec = Recorder::new();
        let config = PipelineConfig {
            parallelism: threads,
            recorder: rec.clone(),
            ..PipelineConfig::default()
        };
        let _ = Pipeline::new(&catalog).with_config(config).run(&log);
        let spans = rec.spans();
        let by_id: HashMap<u64, usize> = spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();

        let pipeline = spans
            .iter()
            .find(|s| s.name == "pipeline")
            .expect("pipeline root span");
        assert_eq!(pipeline.parent, None, "threads {threads}");

        // Every stage span is a direct child of the pipeline root.
        for stage in [
            "sort", "dedup", "parse", "sessions", "mine", "detect", "solve",
        ] {
            let s = spans
                .iter()
                .find(|s| s.name == stage)
                .unwrap_or_else(|| panic!("missing {stage} span at threads {threads}"));
            assert_eq!(
                s.parent,
                Some(pipeline.id),
                "{stage} not under pipeline at threads {threads}"
            );
        }

        // Every shard span hangs under its own stage span and fits inside
        // it temporally (same monotonic clock, child closes first).
        let mut shard_spans = 0usize;
        for s in &spans {
            let Some(stage) = s.name.strip_suffix(".shard") else {
                continue;
            };
            shard_spans += 1;
            let parent = &spans[by_id[&s.parent.expect("shard span has a parent")]];
            assert_eq!(parent.name, stage, "threads {threads}");
            assert!(s.start_us >= parent.start_us, "threads {threads}");
            assert!(
                s.start_us + s.dur_us <= parent.start_us + parent.dur_us,
                "{} does not fit inside {} at threads {threads}",
                s.name,
                parent.name
            );
        }
        assert!(shard_spans > 0, "no shard spans at threads {threads}");
    }
}

#[test]
fn output_is_byte_identical_with_recorder_enabled_or_disabled() {
    let catalog = skyserver_catalog();
    let log = generate(&GenConfig::with_scale(1_500, 13));
    let mut baseline: Option<(Vec<u8>, Vec<u8>)> = None;
    for &threads in THREADS {
        for enabled in [false, true] {
            let config = PipelineConfig {
                parallelism: threads,
                recorder: if enabled {
                    Recorder::new()
                } else {
                    Recorder::disabled()
                },
                ..PipelineConfig::default()
            };
            let result = Pipeline::new(&catalog).with_config(config).run(&log);
            let rendered = rendered_logs(&result);
            match &baseline {
                None => baseline = Some(rendered),
                Some(b) => assert_eq!(
                    *b, rendered,
                    "output differs at threads {threads}, recorder enabled={enabled}"
                ),
            }
        }
    }
}
