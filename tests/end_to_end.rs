//! Cross-crate integration tests: generator → file I/O → pipeline → engine
//! → clustering.

use sqlog::catalog::skyserver_catalog;
use sqlog::cluster::cluster_statements;
use sqlog::core::Pipeline;
use sqlog::gen::{generate, GenConfig};
use sqlog::logmodel::{read_log, write_log, LogEntry, QueryLog, Timestamp};
use sqlog::minidb::datagen::skyserver_db;

/// A generated log survives a round trip through the on-disk format and the
/// pipeline produces identical results on the reloaded copy.
#[test]
fn file_round_trip_preserves_pipeline_results() {
    let log = generate(&GenConfig::with_scale(5_000, 9001));
    let mut bytes = Vec::new();
    write_log(&log, &mut bytes).unwrap();
    let reloaded = read_log(&bytes[..]).unwrap();
    assert_eq!(log, reloaded);

    let catalog = skyserver_catalog();
    let a = Pipeline::new(&catalog).run(&log);
    let b = Pipeline::new(&catalog).run(&reloaded);
    // Timings are wall-clock noise; everything else must match exactly.
    assert_eq!(a.stats.with_zeroed_timings(), b.stats.with_zeroed_timings());
    assert_eq!(a.clean_log, b.clean_log);
}

/// The DW rewrite is semantically equivalent: executing the merged IN-query
/// returns exactly the union of the original point-query results.
#[test]
fn dw_rewrite_is_semantically_equivalent() {
    let db = skyserver_db(500, 1);
    let catalog = skyserver_catalog();

    // Point queries against the employee table (fully populated, ids 1–50).
    let ids = [3u64, 17, 29, 41, 8];
    let log = QueryLog::from_entries(
        ids.iter()
            .enumerate()
            .map(|(i, id)| {
                LogEntry::minimal(
                    i as u64,
                    format!("SELECT name, address FROM employee WHERE empid = {id}"),
                    Timestamp::from_secs(i as i64),
                )
                .with_user("u")
            })
            .collect(),
    );

    let mut original_rows = Vec::new();
    for e in &log.entries {
        let (r, _) = db.execute_sql(&e.statement).unwrap();
        original_rows.extend(r.rows);
    }
    assert_eq!(original_rows.len(), ids.len());

    let result = Pipeline::new(&catalog).run(&log);
    assert_eq!(result.clean_log.len(), 1);
    let merged_sql = &result.clean_log.entries[0].statement;
    assert!(merged_sql.contains("IN ("), "{merged_sql}");
    let (merged, _) = db.execute_sql(merged_sql).unwrap();

    // The rewrite prepends the filter column; compare on the original
    // columns (name, address), which are the trailing two.
    assert_eq!(merged.rows.len(), original_rows.len());
    for row in &original_rows {
        assert!(
            merged
                .rows
                .iter()
                .any(|m| &m[m.len() - 2..] == row.as_slice()),
            "row {row:?} missing from merged result"
        );
    }
}

/// The DS rewrite returns the union of the original projections on the same
/// row.
#[test]
fn ds_rewrite_is_semantically_equivalent() {
    let db = skyserver_db(500, 2);
    let catalog = skyserver_catalog();
    let log = QueryLog::from_entries(vec![
        LogEntry::minimal(
            0,
            "SELECT name FROM employee WHERE empid = 7",
            Timestamp::from_secs(0),
        )
        .with_user("u"),
        LogEntry::minimal(
            1,
            "SELECT address, phone FROM employee WHERE empid = 7",
            Timestamp::from_secs(1),
        )
        .with_user("u"),
    ]);
    let (name_r, _) = db.execute_sql(&log.entries[0].statement).unwrap();
    let (addr_r, _) = db.execute_sql(&log.entries[1].statement).unwrap();

    let result = Pipeline::new(&catalog).run(&log);
    assert_eq!(result.clean_log.len(), 1);
    let (merged, _) = db
        .execute_sql(&result.clean_log.entries[0].statement)
        .unwrap();
    assert_eq!(merged.columns, vec!["name", "address", "phone"]);
    assert_eq!(merged.rows.len(), 1);
    assert_eq!(merged.rows[0][0], name_r.rows[0][0]);
    assert_eq!(merged.rows[0][1], addr_r.rows[0][0]);
    assert_eq!(merged.rows[0][2], addr_r.rows[0][1]);
}

/// The DF rewrite joins the two tables and returns both projections.
#[test]
fn df_rewrite_is_semantically_equivalent() {
    let db = skyserver_db(500, 3);
    let catalog = skyserver_catalog();
    let log = QueryLog::from_entries(vec![
        LogEntry::minimal(
            0,
            "SELECT name FROM employee WHERE empid = 9",
            Timestamp::from_secs(0),
        )
        .with_user("u"),
        LogEntry::minimal(
            1,
            "SELECT address FROM employeeinfo WHERE empid = 9",
            Timestamp::from_secs(1),
        )
        .with_user("u"),
    ]);
    let (name_r, _) = db.execute_sql(&log.entries[0].statement).unwrap();
    let (addr_r, _) = db.execute_sql(&log.entries[1].statement).unwrap();

    let result = Pipeline::new(&catalog).run(&log);
    assert_eq!(result.clean_log.len(), 1);
    let merged_sql = &result.clean_log.entries[0].statement;
    assert!(merged_sql.contains("INNER JOIN"), "{merged_sql}");
    let (merged, _) = db.execute_sql(merged_sql).unwrap();
    assert_eq!(merged.rows.len(), 1);
    assert_eq!(merged.rows[0][0], name_r.rows[0][0]);
    assert_eq!(merged.rows[0][1], addr_r.rows[0][0]);
}

/// The paper's introduction rewrite (Example 3): the CTH-free form of
/// Table 1 — a join against a grouped derived table — executes on the
/// engine and matches the step-by-step original.
#[test]
fn intro_rewrite_runs_on_the_engine() {
    let db = skyserver_db(200, 4);
    // Original treasure hunt: find the employee, then count the orders.
    let (emp, _) = db
        .execute_sql("SELECT empid, name FROM employee WHERE empid = 12")
        .unwrap();
    assert_eq!(emp.rows.len(), 1);
    let (orders, _) = db
        .execute_sql("SELECT count(*) FROM orders WHERE empid = 12")
        .unwrap();
    let expected_count = orders.rows[0][0].clone();

    // The paper's merged form (intro, Example 3 analogue).
    let (merged, _) = db
        .execute_sql(
            "SELECT E.empId, E.name, O.oCount FROM employee E INNER JOIN \
             (SELECT empId, count(*) AS oCount FROM orders GROUP BY empId) O \
             ON O.empId = E.empId WHERE E.empId = 12",
        )
        .unwrap();
    assert_eq!(merged.rows.len(), 1);
    assert_eq!(merged.rows[0][0], emp.rows[0][0]);
    assert_eq!(merged.rows[0][1], emp.rows[0][1]);
    assert_eq!(merged.rows[0][2], expected_count);
}

/// Cleaning reduces clustering noise: the clean log yields at most as many
/// clusters as the raw log, never more (§6.9 shape).
#[test]
fn cleaning_reduces_cluster_count() {
    let log = generate(&GenConfig::with_scale(6_000, 9002));
    let catalog = skyserver_catalog();
    let result = Pipeline::new(&catalog).run(&log);

    let cluster_count = |l: &QueryLog| {
        cluster_statements(l.entries.iter().map(|e| e.statement.as_str()), 0.9)
            .0
            .count()
    };
    let raw = cluster_count(&log);
    let clean = cluster_count(&result.clean_log);
    let removal = cluster_count(&result.removal_log);
    assert!(clean <= raw, "raw {raw} clean {clean}");
    assert!(removal <= raw, "raw {raw} removal {removal}");
}

/// Out-of-order and clock-skewed logs are handled: the pipeline sorts and
/// still finds the stifle.
#[test]
fn tolerates_out_of_order_timestamps() {
    let catalog = skyserver_catalog();
    let mut entries = vec![
        LogEntry::minimal(
            0,
            "SELECT name FROM employee WHERE empid = 2",
            Timestamp::from_secs(10),
        )
        .with_user("u"),
        LogEntry::minimal(
            1,
            "SELECT name FROM employee WHERE empid = 1",
            Timestamp::from_secs(5),
        )
        .with_user("u"),
        LogEntry::minimal(
            2,
            "SELECT name FROM employee WHERE empid = 3",
            Timestamp::from_secs(15),
        )
        .with_user("u"),
    ];
    entries.swap(0, 2);
    let log = QueryLog::from_entries(entries);
    let result = Pipeline::new(&catalog).run(&log);
    assert_eq!(result.stats.solved_instances, 1);
    // Values ordered by time: 1, 2, 3.
    assert!(result.clean_log.entries[0]
        .statement
        .contains("IN (1, 2, 3)"));
}

/// Entries with no user metadata at all still flow through every stage.
#[test]
fn minimal_metadata_logs_work() {
    let log = generate(&GenConfig::with_scale(3_000, 9003)).strip_metadata();
    let catalog = skyserver_catalog();
    let result = Pipeline::new(&catalog).run(&log);
    assert!(result.stats.final_size > 0);
    assert!(result.stats.solved_instances > 0);
}
