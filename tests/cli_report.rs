//! `sqlog-report`, the run ledger and `--progress`, end to end through the
//! real binaries.
//!
//! Two identical `sqlog-clean` runs appended to one ledger must diff clean
//! (exit 0); a synthetic 2× stage slowdown injected into a copied report
//! must trip the gate (exit 2). `--progress` and `--ledger` must leave the
//! clean log byte-identical to a bare run at every parallelism × cache
//! combination, and progress output must land on stderr, never stdout.

use sqlog::core::RunReport;
use sqlog::gen::{generate, GenConfig};
use sqlog::logmodel::write_log_file;
use sqlog::obs::Json;
use std::path::PathBuf;
use std::process::Command;

const CLEAN: &str = env!("CARGO_BIN_EXE_sqlog-clean");
const REPORT: &str = env!("CARGO_BIN_EXE_sqlog-report");

/// A scratch directory unique to this test process, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(label: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("sqlog-report-{label}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn write_fixture(scratch: &Scratch, scale: usize) -> PathBuf {
    let input = scratch.path("input.tsv");
    write_log_file(&generate(&GenConfig::with_scale(scale, 7)), &input).expect("write log");
    input
}

fn run_clean(args: &[&str]) -> std::process::Output {
    Command::new(CLEAN)
        .args(args)
        .output()
        .expect("run sqlog-clean")
}

fn run_report(args: &[&str]) -> std::process::Output {
    Command::new(REPORT)
        .args(args)
        .output()
        .expect("run sqlog-report")
}

#[test]
fn identical_runs_diff_clean_and_injected_slowdown_trips_the_gate() {
    let scratch = Scratch::new("diff");
    let input = write_fixture(&scratch, 1_000);
    let ledger = scratch.path("ledger");
    for i in 0..2 {
        let clean = scratch.path(&format!("clean-{i}.tsv"));
        let out = run_clean(&[
            "--in",
            input.to_str().unwrap(),
            "--out",
            clean.to_str().unwrap(),
            "--ledger",
            ledger.to_str().unwrap(),
        ]);
        assert!(
            out.status.success(),
            "run {i} failed\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    // Two identical runs on one machine: no regression, exit 0.
    let out = run_report(&["diff", "--ledger", ledger.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "identical runs must not regress\n{stdout}{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("no regressions"), "{stdout}");

    // Inject a synthetic 2× slowdown into the parse stage of a copied
    // report and gate at --min-stage-ms 0 so tiny test timings count.
    let (entries, warnings) = sqlog::obs::Ledger::open(&ledger)
        .expect("open ledger")
        .entries()
        .expect("read ledger");
    assert!(warnings.is_empty(), "{warnings:?}");
    assert_eq!(entries.len(), 2, "both runs appended");
    let baseline = scratch.path("baseline.json");
    let slowed = scratch.path("slowed.json");
    let report = RunReport::from_json(&entries[0].1.report).expect("parse ledger report");
    std::fs::write(&baseline, report.render()).unwrap();
    let mut slow = report.clone();
    slow.stats.timings.parse_ms = (slow.stats.timings.parse_ms.max(1)) * 2 + 100;
    slow.stats.timings.total_ms += slow.stats.timings.parse_ms;
    std::fs::write(&slowed, slow.render()).unwrap();

    let out = run_report(&[
        "diff",
        baseline.to_str().unwrap(),
        slowed.to_str().unwrap(),
        "--min-stage-ms",
        "0",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(2),
        "2x slowdown must exit 2\n{stdout}"
    );
    assert!(stdout.contains("REGRESSED"), "{stdout}");
    assert!(stdout.contains("stage parse"), "{stdout}");

    // The reverse direction is an improvement, not a regression.
    let out = run_report(&[
        "diff",
        slowed.to_str().unwrap(),
        baseline.to_str().unwrap(),
        "--min-stage-ms",
        "0",
    ]);
    assert_eq!(
        out.status.code(),
        Some(2 - 2),
        "speedup must not regress\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn show_renders_the_dashboard_from_file_and_ledger() {
    let scratch = Scratch::new("show");
    let input = write_fixture(&scratch, 500);
    let ledger = scratch.path("ledger");
    let stats = scratch.path("stats.json");
    let out = run_clean(&[
        "--in",
        input.to_str().unwrap(),
        "--stats-json",
        stats.to_str().unwrap(),
        "--ledger",
        ledger.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    for source in [
        vec!["show", stats.to_str().unwrap()],
        vec!["show", "--ledger", ledger.to_str().unwrap()],
    ] {
        let out = run_report(&source);
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(out.status.success(), "{source:?}\n{stdout}");
        for needle in ["stage", "parse", "run health", "p50 us", "throughput"] {
            assert!(
                stdout.contains(needle),
                "{source:?}: missing {needle:?}\n{stdout}"
            );
        }
        // The ledger entry recorded peak RSS on Linux; the dashboard
        // surfaces whatever memory counters exist.
        assert!(
            stdout.contains("memory"),
            "{source:?}: no memory section\n{stdout}"
        );
    }
    // The ledger-sourced view carries the envelope line.
    let out = run_report(&["show", "--ledger", ledger.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("kind clean"), "{stdout}");
    assert!(stdout.contains("config fp"), "{stdout}");
}

#[test]
fn progress_and_ledger_leave_outputs_byte_identical() {
    let scratch = Scratch::new("identical");
    let input = write_fixture(&scratch, 800);
    for threads in ["1", "8"] {
        for cache in [true, false] {
            let label = format!("t{threads}-c{cache}");
            let base = scratch.path(&format!("base-{label}.tsv"));
            let mut args = vec![
                "--in".to_string(),
                input.to_str().unwrap().to_string(),
                "--out".to_string(),
                base.to_str().unwrap().to_string(),
                "--parallelism".to_string(),
                threads.to_string(),
            ];
            if !cache {
                args.push("--no-parse-cache".to_string());
            }
            let bare = run_clean(&args.iter().map(String::as_str).collect::<Vec<_>>());
            assert!(bare.status.success(), "{label}");

            let observed = scratch.path(&format!("obs-{label}.tsv"));
            let ledger = scratch.path(&format!("ledger-{label}"));
            let mut args2 = args.clone();
            args2[3] = observed.to_str().unwrap().to_string();
            args2.extend([
                "--progress".to_string(),
                "--ledger".to_string(),
                ledger.to_str().unwrap().to_string(),
            ]);
            let obs = run_clean(&args2.iter().map(String::as_str).collect::<Vec<_>>());
            assert!(obs.status.success(), "{label}");

            assert_eq!(
                std::fs::read(&base).unwrap(),
                std::fs::read(&observed).unwrap(),
                "{label}: --progress/--ledger changed the clean log"
            );
            // Progress and the ledger notice write to stderr only; stdout
            // carries the same report either way, modulo the wall-clock
            // timing line (which never repeats exactly between runs).
            let strip_timings = |bytes: &[u8]| -> String {
                String::from_utf8_lossy(bytes)
                    .lines()
                    .filter(|l| !l.starts_with("Stage timings"))
                    .collect::<Vec<_>>()
                    .join("\n")
            };
            assert_eq!(
                strip_timings(&bare.stdout),
                strip_timings(&obs.stdout),
                "{label}: observability flags changed stdout"
            );
            let stderr = String::from_utf8_lossy(&obs.stderr);
            assert!(
                stderr.contains("appended run ledger entry"),
                "{label}: no ledger notice\n{stderr}"
            );
        }
    }
}

#[test]
fn report_rejects_garbage_and_missing_inputs() {
    let scratch = Scratch::new("errors");
    let garbage = scratch.path("garbage.json");
    std::fs::write(&garbage, "{\"not\": \"a report\"}").unwrap();
    let out = run_report(&["show", garbage.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("neither a run report nor a ledger entry"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = run_report(&["show", scratch.path("missing.json").to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));

    // Diffing a one-entry ledger is a usage error, not a panic.
    let ledger = scratch.path("ledger");
    let stats = scratch.path("stats.json");
    let input = write_fixture(&scratch, 100);
    let out = run_clean(&[
        "--in",
        input.to_str().unwrap(),
        "--stats-json",
        stats.to_str().unwrap(),
        "--ledger",
        ledger.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let out = run_report(&["diff", "--ledger", ledger.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("need 2"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // A bare stats file also loads (not only ledger entries) — `show`
    // already covers it; `diff` with mixed sources must too.
    let out = run_report(&["diff", stats.to_str().unwrap(), stats.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn resumed_run_marks_skipped_stages_in_progress_output() {
    let scratch = Scratch::new("resume");
    let input = write_fixture(&scratch, 500);
    let run_dir = scratch.path("run");
    let first = scratch.path("first.tsv");
    let out = run_clean(&[
        "--in",
        input.to_str().unwrap(),
        "--out",
        first.to_str().unwrap(),
        "--run-dir",
        run_dir.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Resume from the completed run directory: every restored stage must
    // render as skipped in the progress stream, and stdout must say what
    // was resumed.
    let second = scratch.path("second.tsv");
    let out = run_clean(&[
        "--in",
        input.to_str().unwrap(),
        "--out",
        second.to_str().unwrap(),
        "--resume",
        run_dir.to_str().unwrap(),
        "--progress",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stderr}");
    assert!(
        stderr.contains("skipped (restored from checkpoint)"),
        "no skipped-stage progress line\n{stderr}"
    );
    assert!(
        stdout.contains("Resumed from checkpoints"),
        "no resume row in the report\n{stdout}"
    );
    assert_eq!(
        std::fs::read(&first).unwrap(),
        std::fs::read(&second).unwrap(),
        "resume changed the clean log"
    );
}

#[test]
fn ledger_entry_carries_fingerprints_and_memory_counters() {
    let scratch = Scratch::new("entry");
    let input = write_fixture(&scratch, 300);
    let ledger_dir = scratch.path("ledger");
    let out = run_clean(&[
        "--in",
        input.to_str().unwrap(),
        "--ledger",
        ledger_dir.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let (path, entry) = sqlog::obs::Ledger::open(&ledger_dir)
        .expect("open")
        .latest()
        .expect("read")
        .expect("one entry");
    assert!(path.starts_with(&ledger_dir));
    assert_eq!(entry.schema, sqlog::obs::LEDGER_SCHEMA);
    assert_eq!(entry.kind, "clean");
    assert_ne!(entry.config_fingerprint, 0);
    let expected = std::fs::metadata(&input).unwrap().len();
    assert_eq!(entry.input_bytes, expected);
    assert_ne!(entry.input_fnv, 0);
    assert!(!entry.machine.os.is_empty());
    let report = RunReport::from_json(&entry.report).expect("embedded report");
    assert!(report.stats.original_size > 0);
    // Memory accounting flows into the ledger on Linux.
    if cfg!(target_os = "linux") {
        assert!(
            report.obs.counters.get("mem.peak_rss_bytes").copied() > Some(0),
            "no peak RSS counter: {:?}",
            report.obs.counters.keys().collect::<Vec<_>>()
        );
    }
    assert!(
        report.obs.counters.contains_key("mem.template_store_bytes"),
        "{:?}",
        report.obs.counters.keys().collect::<Vec<_>>()
    );
    // Quantiles ride along in the serialized histograms.
    let parse_hist = entry
        .report
        .get("obs")
        .and_then(|o| o.get("histograms"))
        .and_then(|h| h.get("parse.shard_us"))
        .expect("parse shard histogram in ledger JSON");
    for q in ["p50", "p95", "p99"] {
        assert!(
            parse_hist.get(q).and_then(Json::as_u64).is_some(),
            "missing {q} in serialized histogram"
        );
    }
}
