//! Kill/resume chaos harness: SIGKILL-equivalent crashes injected inside
//! every pipeline stage of the real `sqlog-clean` binary, followed by
//! `--resume`, must reproduce the uninterrupted run's output byte for
//! byte — at thread counts 1 and 8, parse cache on or off.
//!
//! Crash injection uses the `SQLOG_FAULT_*` hooks (see
//! `crates/core/src/fault.rs`): `abort` calls `std::process::abort()` —
//! no unwinding, no destructors, the in-process equivalent of SIGKILL —
//! and `stall` parks the process at the injection point so this harness
//! can deliver a *real* external SIGKILL. The `checkpoint` stage kills
//! between serializing a checkpoint and its atomic rename, the exact
//! window where a torn temp file is left behind.
//!
//! Also covered: a crash during the resume itself (double crash), a
//! checkpoint corrupted on disk between crash and resume (detected,
//! reported as a non-fatal diagnostic, stage re-run), and a resume whose
//! configuration drifted (refused, exit 1).

use std::path::PathBuf;
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_sqlog-clean");

/// Marker planted in the fixture. Matches statement text (ingest, dedup,
/// parse, sessions, detect, solve), and the `chaos4242` table name that
/// the mine stage matches via `primary_table`.
const MARKER: &str = "4242";

struct Scratch(PathBuf);

impl Scratch {
    fn new(label: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("sqlog-chaos-{label}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A workload in which the marker reaches every stage: a DW-Stifle on the
/// key attribute `Employee.empId` whose constants contain the marker (so
/// detect finds an instance and solve rewrites it), queries against a
/// `chaos4242` table (so the mine stage's `primary_table` match fires),
/// and unmarked filler across more users to give every shard real work.
fn fixture() -> String {
    let mut s = String::new();
    let mut push = |id: u64, ts: u64, user: &str, stmt: &str| {
        s.push_str(&format!("{id}\t{ts}\t{user}\t\t\t\t{stmt}\n"));
    };
    push(0, 0, "u1", "SELECT name FROM Employee WHERE empId = 42421");
    push(
        1,
        1_000,
        "u1",
        "SELECT name FROM Employee WHERE empId = 42422",
    );
    push(
        2,
        2_000,
        "u1",
        "SELECT name FROM Employee WHERE empId = 42423",
    );
    push(3, 2_500, "u2", "SELECT a FROM chaos4242 WHERE id = 1");
    push(4, 3_500, "u2", "SELECT a FROM chaos4242 WHERE id = 2");
    push(5, 4_500, "u2", "SELECT a FROM chaos4242 WHERE id = 3");
    push(
        6,
        5_000,
        "u3",
        "SELECT ra, dec FROM photoprimary WHERE objid = 7",
    );
    push(
        7,
        6_000,
        "u3",
        "SELECT ra, dec FROM photoprimary WHERE objid = 8",
    );
    push(
        8,
        6_500,
        "u3",
        "SELECT ra, dec FROM photoprimary WHERE objid = 7",
    );
    push(9, 7_000, "u4", "SELECT name FROM Employee WHERE empId = 5");
    push(10, 8_000, "u4", "SELECT name FROM Employee WHERE empId = 6");
    push(
        11,
        9_000,
        "u5",
        "SELECT objid FROM photoprimary WHERE ra > 100",
    );
    push(
        12,
        10_000,
        "u5",
        "SELECT objid FROM photoprimary WHERE ra > 200",
    );
    s
}

struct Paths {
    input: PathBuf,
    run_dir: PathBuf,
    clean: PathBuf,
    removal: PathBuf,
}

fn paths(scratch: &Scratch, leg: &str) -> Paths {
    Paths {
        input: scratch.path("input.tsv"),
        run_dir: scratch.path(&format!("{leg}-rundir")),
        clean: scratch.path(&format!("{leg}-clean.tsv")),
        removal: scratch.path(&format!("{leg}-removal.tsv")),
    }
}

fn base_cmd(p: &Paths, threads: usize, cache: bool) -> Command {
    let mut cmd = Command::new(BIN);
    cmd.args([
        "--in",
        p.input.to_str().unwrap(),
        "--out",
        p.clean.to_str().unwrap(),
        "--removal",
        p.removal.to_str().unwrap(),
        "--parallelism",
        &threads.to_string(),
    ]);
    if !cache {
        cmd.arg("--no-parse-cache");
    }
    cmd
}

/// Reference outputs from an uninterrupted, non-checkpointed run.
fn reference(scratch: &Scratch, threads: usize, cache: bool) -> (Vec<u8>, Vec<u8>) {
    let p = paths(scratch, &format!("ref-{threads}-{cache}"));
    std::fs::write(&p.input, fixture()).expect("write fixture");
    let out = base_cmd(&p, threads, cache)
        .output()
        .expect("run reference");
    assert_eq!(
        out.status.code(),
        Some(0),
        "reference run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    (
        std::fs::read(&p.clean).expect("reference clean log"),
        std::fs::read(&p.removal).expect("reference removal log"),
    )
}

/// Runs the crash leg: `--run-dir`, fault armed to abort inside `stage`.
/// Returns the output; the process must NOT have exited cleanly.
fn crash_leg(p: &Paths, threads: usize, cache: bool, stage: &str, marker: &str) -> Output {
    let out = base_cmd(p, threads, cache)
        .args(["--run-dir", p.run_dir.to_str().unwrap()])
        .env("SQLOG_FAULT_MARKER", marker)
        .env("SQLOG_FAULT_STAGE", stage)
        .env("SQLOG_FAULT_ACTION", "abort")
        .output()
        .expect("spawn crash leg");
    assert!(
        !out.status.success(),
        "stage {stage}: the injected abort did not fire — fixture no longer \
         reaches this stage?\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// Runs the resume leg (fault disarmed) and asserts clean completion.
fn resume_leg(p: &Paths, threads: usize, cache: bool, label: &str) -> Output {
    let out = base_cmd(p, threads, cache)
        .args(["--resume", p.run_dir.to_str().unwrap()])
        .output()
        .expect("spawn resume leg");
    assert_eq!(
        out.status.code(),
        Some(0),
        "{label}: resume failed\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn assert_outputs_match(p: &Paths, reference: &(Vec<u8>, Vec<u8>), label: &str) {
    let clean = std::fs::read(&p.clean).expect("clean log");
    let removal = std::fs::read(&p.removal).expect("removal log");
    assert!(
        clean == reference.0,
        "{label}: clean log differs from uninterrupted run"
    );
    assert!(
        removal == reference.1,
        "{label}: removal log differs from uninterrupted run"
    );
}

/// The core matrix: SIGKILL-equivalent abort inside every stage, at 1 and
/// 8 worker threads, then resume — byte-identical clean and removal logs,
/// and run health records exactly one interruption.
#[test]
fn kill_in_every_stage_then_resume_is_byte_identical() {
    let scratch = Scratch::new("matrix");
    let reference = reference(&scratch, 1, true);

    for stage in [
        "ingest", "dedup", "parse", "sessions", "mine", "detect", "solve",
    ] {
        for threads in [1usize, 8] {
            let label = format!("stage={stage}, threads={threads}");
            let p = paths(&scratch, &format!("{stage}-{threads}"));
            std::fs::write(&p.input, fixture()).expect("write fixture");

            crash_leg(&p, threads, true, stage, MARKER);
            // The crash must not have produced final artifacts.
            assert!(!p.clean.exists(), "{label}: torn clean log left behind");

            let out = resume_leg(&p, threads, true, &label);
            let stdout = String::from_utf8_lossy(&out.stdout);
            assert!(
                stdout.contains("clean (resumed after 1 interruption)"),
                "{label}: run health missed the interruption\nstdout: {stdout}"
            );
            assert_outputs_match(&p, &reference, &label);
        }
    }
}

/// Crash *between* writing a checkpoint's temp file and its atomic rename
/// — the torn-write window. The stage must re-run on resume.
#[test]
fn kill_during_checkpoint_write_is_recovered() {
    let scratch = Scratch::new("ckpt-write");
    let reference = reference(&scratch, 1, true);

    for stage in ["dedup", "mine", "solve"] {
        let label = format!("checkpoint write of {stage}");
        let p = paths(&scratch, &format!("ckpt-{stage}"));
        std::fs::write(&p.input, fixture()).expect("write fixture");

        // Marker = the checkpoint's stage name (see fault.rs).
        crash_leg(&p, 1, true, "checkpoint", stage);
        // The atomic protocol: the checkpoint itself must be absent, not torn.
        let ckpt = p.run_dir.join("checkpoints").join(format!("{stage}.ckpt"));
        assert!(!ckpt.exists(), "{label}: rename happened before the abort?");

        let out = resume_leg(&p, 1, true, &label);
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains("resumed after 1 interruption"),
            "{label}\nstdout: {stdout}"
        );
        assert_outputs_match(&p, &reference, &label);
    }
}

/// The parse cache must not change resumability: crash inside parse with
/// the cache disabled on both legs, still byte-identical.
#[test]
fn kill_with_parse_cache_disabled_resumes_identically() {
    let scratch = Scratch::new("no-cache");
    // Output is cache-independent, but compare like with like anyway.
    let reference = reference(&scratch, 1, false);

    for threads in [1usize, 8] {
        let label = format!("no-cache, threads={threads}");
        let p = paths(&scratch, &format!("nocache-{threads}"));
        std::fs::write(&p.input, fixture()).expect("write fixture");
        crash_leg(&p, threads, false, "parse", MARKER);
        resume_leg(&p, threads, false, &label);
        assert_outputs_match(&p, &reference, &label);
    }
}

/// Double crash: the first resume is itself killed (in a later stage);
/// the second resume completes, reports two interruptions, and still
/// matches the uninterrupted run byte for byte.
#[test]
fn crash_during_resume_then_resume_again() {
    let scratch = Scratch::new("double");
    let reference = reference(&scratch, 1, true);
    let p = paths(&scratch, "double");
    std::fs::write(&p.input, fixture()).expect("write fixture");

    crash_leg(&p, 1, true, "parse", MARKER);

    // First resume: fault re-armed, now in detect — dies mid-resume.
    let out = base_cmd(&p, 1, true)
        .args(["--resume", p.run_dir.to_str().unwrap()])
        .env("SQLOG_FAULT_MARKER", MARKER)
        .env("SQLOG_FAULT_STAGE", "detect")
        .env("SQLOG_FAULT_ACTION", "abort")
        .output()
        .expect("spawn crashing resume");
    assert!(!out.status.success(), "second crash did not fire");

    let out = resume_leg(&p, 1, true, "second resume");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("clean (resumed after 2 interruptions)"),
        "stdout: {stdout}"
    );
    assert_outputs_match(&p, &reference, "double crash");
}

/// A checkpoint corrupted on disk between crash and resume is detected by
/// its header hash, reported as a non-fatal diagnostic, and its stage
/// re-runs — the run still completes with exit 0 and identical output.
#[test]
fn corrupted_checkpoint_is_reported_and_rerun() {
    let scratch = Scratch::new("corrupt");
    let reference = reference(&scratch, 1, true);
    let p = paths(&scratch, "corrupt");
    std::fs::write(&p.input, fixture()).expect("write fixture");

    // Crash in mine: ingest..sessions checkpoints exist.
    crash_leg(&p, 1, true, "mine", MARKER);
    let ckpt = p.run_dir.join("checkpoints").join("sessions.ckpt");
    let mut bytes = std::fs::read(&ckpt).expect("sessions checkpoint");
    let n = bytes.len();
    bytes[n - 2] ^= 0xff;
    std::fs::write(&ckpt, &bytes).expect("corrupt checkpoint");

    let out = resume_leg(&p, 1, true, "corrupted checkpoint");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("checkpoint sessions") && stderr.contains("re-running"),
        "missing diagnostic\nstderr: {stderr}"
    );
    assert_outputs_match(&p, &reference, "corrupted checkpoint");
}

/// Resuming with drifted semantics (a different session gap) must refuse
/// with exit 1 and a clear diagnostic, never silently mix configurations.
#[test]
fn resume_with_changed_config_is_refused() {
    let scratch = Scratch::new("drift");
    let p = paths(&scratch, "drift");
    std::fs::write(&p.input, fixture()).expect("write fixture");
    crash_leg(&p, 1, true, "parse", MARKER);

    let out = base_cmd(&p, 1, true)
        .args(["--resume", p.run_dir.to_str().unwrap()])
        .args(["--session-gap-ms", "1"])
        .output()
        .expect("spawn drifted resume");
    assert_eq!(out.status.code(), Some(1), "drifted resume must be fatal");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("different configuration"),
        "stderr: {stderr}"
    );

    // Execution knobs are NOT semantics: a different thread count resumes.
    let out = resume_leg(&p, 8, true, "thread-count drift");
    assert!(out.status.success());
}

/// Resuming against a changed input file must refuse with exit 1.
#[test]
fn resume_with_changed_input_is_refused() {
    let scratch = Scratch::new("input-drift");
    let p = paths(&scratch, "input-drift");
    std::fs::write(&p.input, fixture()).expect("write fixture");
    crash_leg(&p, 1, true, "dedup", MARKER);

    let mut drifted = fixture();
    drifted.push_str("99\t99000\tu9\t\t\t\tSELECT 1\n");
    std::fs::write(&p.input, drifted).expect("rewrite input");

    let out = base_cmd(&p, 1, true)
        .args(["--resume", p.run_dir.to_str().unwrap()])
        .output()
        .expect("spawn resume");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("has changed"), "stderr: {stderr}");
}

/// The genuine article: the child parks at the injection point (`stall`)
/// and this harness delivers a real external SIGKILL, then resumes.
#[test]
fn real_sigkill_then_resume_is_byte_identical() {
    let scratch = Scratch::new("sigkill");
    let reference = reference(&scratch, 1, true);
    let p = paths(&scratch, "sigkill");
    std::fs::write(&p.input, fixture()).expect("write fixture");
    let stall_file = scratch.path("stalled");

    let mut child = base_cmd(&p, 1, true)
        .args(["--run-dir", p.run_dir.to_str().unwrap()])
        .env("SQLOG_FAULT_MARKER", MARKER)
        .env("SQLOG_FAULT_STAGE", "detect")
        .env("SQLOG_FAULT_ACTION", "stall")
        .env("SQLOG_FAULT_STALL_FILE", &stall_file)
        .spawn()
        .expect("spawn stalling run");

    // Wait for the child to reach the injection point, then SIGKILL it
    // (std's Child::kill is SIGKILL on unix).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    while !stall_file.exists() {
        assert!(
            std::time::Instant::now() < deadline,
            "child never reached the detect stall point"
        );
        if let Some(status) = child.try_wait().expect("poll child") {
            panic!("child exited ({status}) before stalling");
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    child.kill().expect("SIGKILL the child");
    let status = child.wait().expect("reap child");
    assert!(!status.success(), "killed child cannot have exited cleanly");

    let out = resume_leg(&p, 1, true, "after real SIGKILL");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("resumed after 1 interruption"),
        "stdout: {stdout}"
    );
    assert_outputs_match(&p, &reference, "real SIGKILL");
}

/// `--resume` pointed at a directory that is not a run directory fails
/// fast with a helpful message, and `--run-dir` + `--resume` together are
/// a usage error (exit 1).
#[test]
fn resume_misuse_diagnostics() {
    let scratch = Scratch::new("misuse");
    let p = paths(&scratch, "misuse");
    std::fs::write(&p.input, fixture()).expect("write fixture");

    let out = base_cmd(&p, 1, true)
        .args(["--resume", scratch.path("nonexistent").to_str().unwrap()])
        .output()
        .expect("spawn resume of nothing");
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("not a run directory"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = base_cmd(&p, 1, true)
        .args(["--run-dir", "a", "--resume", "b"])
        .output()
        .expect("spawn conflicting flags");
    assert_eq!(out.status.code(), Some(1));
}
