//! `sqlog-clean` ingestion policies, end to end through the real binary.
//!
//! A corrupted input file (structural damage, invalid UTF-8, a depth-bomb
//! statement) must abort a strict run with exit 1, while `--lenient` runs
//! to completion: bad lines copied verbatim to the `--quarantine` sidecar,
//! the run-health section reporting every count, and exit 2 — the
//! "completed but degraded" code. A fault-free run exits 0. These three
//! exit codes are a documented contract, pinned here.

use std::path::PathBuf;
use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_sqlog-clean");

/// A scratch directory unique to this test process, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(label: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("sqlog-cli-{label}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

const MALFORMED_LINE: &[u8] = b"definitely not a log line";
const UTF8_LINE: &[u8] = b"9\t9000\tu2\t\t\t\tSELECT \xFF FROM t";

fn corrupted_fixture() -> Vec<u8> {
    let mut raw: Vec<u8> = Vec::new();
    raw.extend_from_slice(b"0\t0\tu1\t\t\t\tSELECT name FROM Employee WHERE empId = 8\n");
    raw.extend_from_slice(MALFORMED_LINE);
    raw.push(b'\n');
    raw.extend_from_slice(b"1\t1000\tu1\t\t\t\tSELECT name FROM Employee WHERE empId = 1\n");
    raw.extend_from_slice(UTF8_LINE);
    raw.push(b'\n');
    let bomb = format!(
        "2\t2000\tu1\t\t\t\tSELECT {}1{}\n",
        "(".repeat(10_000),
        ")".repeat(10_000)
    );
    raw.extend_from_slice(bomb.as_bytes());
    raw.extend_from_slice(b"3\t3000\tu1\t\t\t\tSELECT ra, dec FROM photoprimary WHERE objid=3\n");
    raw
}

#[test]
fn strict_mode_aborts_on_corrupted_input() {
    let scratch = Scratch::new("strict");
    let input = scratch.path("corrupted.tsv");
    std::fs::write(&input, corrupted_fixture()).expect("write fixture");

    let out = Command::new(BIN)
        .args(["--in", input.to_str().unwrap()])
        .output()
        .expect("run sqlog-clean");
    assert_eq!(
        out.status.code(),
        Some(1),
        "strict run must exit 1 (fatal) on a corrupted log"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("malformed log line 2"), "stderr: {stderr}");
}

#[test]
fn lenient_mode_runs_to_completion_with_quarantine_and_health_report() {
    let scratch = Scratch::new("lenient");
    let input = scratch.path("corrupted.tsv");
    let clean = scratch.path("clean.tsv");
    let quarantine = scratch.path("bad.tsv");
    std::fs::write(&input, corrupted_fixture()).expect("write fixture");

    let out = Command::new(BIN)
        .args([
            "--in",
            input.to_str().unwrap(),
            "--out",
            clean.to_str().unwrap(),
            "--lenient",
            "--quarantine",
            quarantine.to_str().unwrap(),
        ])
        .output()
        .expect("run sqlog-clean");
    let stderr = String::from_utf8_lossy(&out.stderr);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(2),
        "a lenient run that quarantined lines completed degraded: exit 2\n{stderr}"
    );

    // The sidecar holds exactly the two unreadable lines, verbatim.
    let mut expected = Vec::new();
    expected.extend_from_slice(MALFORMED_LINE);
    expected.push(b'\n');
    expected.extend_from_slice(UTF8_LINE);
    expected.push(b'\n');
    assert_eq!(std::fs::read(&quarantine).expect("read sidecar"), expected);
    assert!(
        stderr.contains("quarantined 2 unreadable lines (1 malformed, 1 invalid UTF-8)"),
        "stderr: {stderr}"
    );

    // The statistics report carries the run-health accounting.
    assert!(stdout.contains("Run health"), "stdout: {stdout}");
    assert!(stdout.contains("degraded"), "stdout: {stdout}");
    assert!(stdout.contains("2 (1 invalid UTF-8)"), "stdout: {stdout}");
    assert!(
        stdout.contains("limit-rejected statements"),
        "stdout: {stdout}"
    );

    // The clean log was produced: the surviving DW pair collapses into one
    // IN-query, the photoprimary query passes through.
    let clean_text = std::fs::read_to_string(&clean).expect("read clean log");
    assert!(clean_text.contains("IN (8, 1)"), "clean: {clean_text}");
    assert!(clean_text.contains("photoprimary"), "clean: {clean_text}");
}

#[test]
fn quarantine_without_lenient_is_rejected() {
    let out = Command::new(BIN)
        .args(["--in", "whatever.tsv", "--quarantine", "bad.tsv"])
        .output()
        .expect("run sqlog-clean");
    assert_eq!(out.status.code(), Some(1), "usage errors are fatal: exit 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--quarantine requires --lenient"),
        "{stderr}"
    );
}

#[test]
fn healthy_run_exits_zero_and_help_exits_zero() {
    let scratch = Scratch::new("healthy");
    let input = scratch.path("ok.tsv");
    std::fs::write(
        &input,
        b"0\t0\tu1\t\t\t\tSELECT name FROM Employee WHERE empId = 8\n\
          1\t1000\tu1\t\t\t\tSELECT name FROM Employee WHERE empId = 1\n",
    )
    .expect("write fixture");

    let out = Command::new(BIN)
        .args(["--in", input.to_str().unwrap()])
        .output()
        .expect("run sqlog-clean");
    assert_eq!(out.status.code(), Some(0), "clean run exits 0");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("clean (no faults)"), "stdout: {stdout}");

    let help = Command::new(BIN).args(["--help"]).output().expect("help");
    assert_eq!(help.status.code(), Some(0), "--help exits 0");
}
