//! `sqlog-clean` observability flags, end to end through the real binary.
//!
//! A run with `--trace-events` and `--stats-json` must produce valid NDJSON
//! (every line a complete JSON object of a known type), per-shard spans
//! covering every pipeline stage plus ingest and report, and a stats JSON
//! whose statistics render to exactly the block printed on stdout. An
//! unwritable sink path must fail before any pipeline work.

use sqlog::core::{render_statistics, RunReport};
use sqlog::gen::{generate, GenConfig};
use sqlog::logmodel::write_log_file;
use sqlog::obs::Json;
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_sqlog-clean");

/// A scratch directory unique to this test process, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(label: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("sqlog-obs-{label}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

const STAGES: &[&str] = &[
    "ingest", "sort", "dedup", "parse", "sessions", "mine", "detect", "solve", "report",
];

#[test]
fn trace_events_and_stats_json_cover_the_run() {
    let scratch = Scratch::new("full");
    let input = scratch.path("input.tsv");
    let clean = scratch.path("clean.tsv");
    let trace = scratch.path("trace.ndjson");
    let stats = scratch.path("stats.json");
    let log = generate(&GenConfig::with_scale(2_000, 7));
    write_log_file(&log, &input).expect("write generated log");

    let out = Command::new(BIN)
        .args([
            "--in",
            input.to_str().unwrap(),
            "--out",
            clean.to_str().unwrap(),
            "--lenient",
            "--parallelism",
            "2",
            "--trace-events",
            trace.to_str().unwrap(),
            "--stats-json",
            stats.to_str().unwrap(),
        ])
        .output()
        .expect("run sqlog-clean");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "run failed\n{stderr}");

    // Every NDJSON line is a complete JSON object of a known type; the
    // stream opens with the meta line.
    let trace_text = std::fs::read_to_string(&trace).expect("read trace");
    let mut span_ids: HashMap<u64, String> = HashMap::new(); // id → span name
    let mut names: HashSet<String> = HashSet::new();
    let mut shard_parents: Vec<(String, u64)> = Vec::new();
    for (i, line) in trace_text.lines().enumerate() {
        let v = Json::parse(line).unwrap_or_else(|e| panic!("line {}: {e}: {line}", i + 1));
        let ty = v.get("type").and_then(Json::as_str).expect("type field");
        assert!(
            ["meta", "span", "warning", "counter", "histogram"].contains(&ty),
            "unknown event type {ty:?}"
        );
        if i == 0 {
            assert_eq!(ty, "meta", "first line must be meta");
            assert_eq!(v.get("schema").and_then(Json::as_u64), Some(1));
            continue;
        }
        if ty == "span" {
            let name = v.get("name").and_then(Json::as_str).expect("span name");
            let id = v.get("id").and_then(Json::as_u64).expect("span id");
            span_ids.insert(id, name.to_string());
            names.insert(name.to_string());
            if let Some(stage) = name.strip_suffix(".shard") {
                let parent = v
                    .get("parent")
                    .and_then(Json::as_u64)
                    .unwrap_or_else(|| panic!("{name} span has no parent"));
                shard_parents.push((stage.to_string(), parent));
                assert!(
                    v.get("fields").and_then(|f| f.get("shard")).is_some(),
                    "{name} span lacks a shard field: {line}"
                );
            }
        }
    }
    for stage in STAGES {
        assert!(names.contains(*stage), "missing {stage} span: {names:?}");
    }
    assert!(names.contains("pipeline"), "missing pipeline root span");
    // Every shard span hangs under its own stage span.
    assert!(!shard_parents.is_empty(), "no shard spans recorded");
    for (stage, parent) in &shard_parents {
        assert_eq!(
            span_ids.get(parent).map(String::as_str),
            Some(stage.as_str()),
            "a {stage}.shard span is parented to the wrong span"
        );
    }

    // The stats JSON round-trips and its statistics render to exactly the
    // block printed on stdout — the two views cannot disagree.
    let stats_text = std::fs::read_to_string(&stats).expect("read stats");
    let report = RunReport::parse(&stats_text).expect("parse run report");
    assert_eq!(report.stats.original_size, log.len());
    assert!(
        stdout.contains(&render_statistics(&report.stats)),
        "stdout does not contain the serialized statistics block\n{stdout}"
    );
    // The aggregated observability section covers every stage.
    for stage in STAGES {
        assert!(
            report.obs.stages.contains_key(*stage),
            "obs report lacks stage {stage}: {:?}",
            report.obs.stages.keys().collect::<Vec<_>>()
        );
    }
}

#[test]
fn unwritable_trace_path_fails_before_the_run() {
    let scratch = Scratch::new("badpath");
    let input = scratch.path("input.tsv");
    write_log_file(&generate(&GenConfig::with_scale(50, 1)), &input).expect("write log");
    for flag in ["--trace-events", "--stats-json"] {
        let out = Command::new(BIN)
            .args([
                "--in",
                input.to_str().unwrap(),
                flag,
                "/nonexistent-dir/sink.out",
            ])
            .output()
            .expect("run sqlog-clean");
        assert_eq!(out.status.code(), Some(1), "{flag}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("cannot create"), "{flag}: {stderr}");
        // Failed before ingesting anything.
        assert!(!stderr.contains("read "), "{flag}: ran anyway\n{stderr}");
        assert!(out.stdout.is_empty(), "{flag}: produced a report anyway");
    }
}
