//! Property tests for the solver rewrites, checked against the mini
//! database: for random stifle runs, the clean log's statements return
//! exactly the same data as the original statements.

use proptest::prelude::*;
use sqlog::catalog::skyserver_catalog;
use sqlog::core::Pipeline;
use sqlog::logmodel::{LogEntry, QueryLog, Timestamp};
use sqlog::minidb::datagen::skyserver_db;
use sqlog::minidb::{MiniDb, Value};

fn collect_rows(db: &MiniDb, statements: impl IntoIterator<Item = String>) -> Vec<Vec<Value>> {
    let mut rows = Vec::new();
    for sql in statements {
        let (r, _) = db
            .execute_sql(&sql)
            .unwrap_or_else(|e| panic!("{sql}: {e}"));
        rows.extend(r.rows);
    }
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// DW runs: the merged IN-query covers exactly the union of originals.
    #[test]
    fn dw_merge_preserves_results(
        ids in proptest::collection::vec(1u64..=50, 2..8),
        gap_ms in 200u64..900,
    ) {
        // Adjacent equal ids would be duplicates, not DW pairs; make the
        // run strictly alternating by deduplicating adjacents.
        let mut run: Vec<u64> = Vec::new();
        for id in ids {
            if run.last() != Some(&id) {
                run.push(id);
            }
        }
        prop_assume!(run.len() >= 2);

        let db = skyserver_db(200, 5);
        let catalog = skyserver_catalog();
        let log = QueryLog::from_entries(
            run.iter()
                .enumerate()
                .map(|(i, id)| {
                    LogEntry::minimal(
                        i as u64,
                        format!("SELECT name, phone FROM employee WHERE empid = {id}"),
                        Timestamp::from_millis(i as i64 * gap_ms as i64),
                    )
                    .with_user("u")
                })
                .collect(),
        );

        let original = collect_rows(&db, log.entries.iter().map(|e| e.statement.clone()));

        let result = Pipeline::new(&catalog).run(&log);
        prop_assert_eq!(result.clean_log.len(), 1, "expected one merged query");
        let merged_rows = collect_rows(
            &db,
            result.clean_log.entries.iter().map(|e| e.statement.clone()),
        );

        // Distinct ids in the run = distinct result rows of the merge.
        let distinct: std::collections::HashSet<u64> = run.iter().copied().collect();
        prop_assert_eq!(merged_rows.len(), distinct.len());
        // Every original row appears in the merged result (modulo the
        // prepended filter column).
        for row in &original {
            prop_assert!(
                merged_rows.iter().any(|m| &m[m.len() - 2..] == row.as_slice()),
                "missing row {:?}",
                row
            );
        }
    }

    /// Solving never loses non-antipattern statements: every statement that
    /// is not part of a solvable instance appears verbatim in the clean log.
    #[test]
    fn clean_log_keeps_untouched_statements(seed in 0u64..50) {
        let log = sqlog::gen::generate(&sqlog::gen::GenConfig::with_scale(800, seed));
        let catalog = skyserver_catalog();
        let result = Pipeline::new(&catalog).run(&log);

        // Conservation: solved queries disappear, rewrites appear, nothing
        // else changes (relative to the parse-surviving population).
        let survivors = result.stats.select_count;
        let expected = survivors - result.stats.solved_queries
            + result.stats.rewritten_statements;
        prop_assert_eq!(result.stats.final_size, expected);
    }

    /// The clean log always re-parses in full.
    #[test]
    fn clean_log_reparses(seed in 100u64..120) {
        let log = sqlog::gen::generate(&sqlog::gen::GenConfig::with_scale(600, seed));
        let catalog = skyserver_catalog();
        let result = Pipeline::new(&catalog).run(&log);
        for e in &result.clean_log.entries {
            prop_assert!(
                sqlog::sql::parse_statement(&e.statement).is_ok(),
                "clean statement does not parse: {}",
                e.statement
            );
        }
    }
}
