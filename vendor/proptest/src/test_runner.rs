//! Test runner plumbing: configuration, case errors, and the deterministic
//! RNG threaded through every strategy.

/// Mirrors `proptest::test_runner::Config` — only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct Config {
    pub cases: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// Loads the committed regression seeds for one test from
/// `<manifest_dir>/proptest-regressions/seeds.txt`.
///
/// Format, one entry per line:
///
/// ```text
/// # comment
/// <test_id> <seed>
/// ```
///
/// where `<test_id>` is `module_path!()::test_name` exactly as a failure
/// message prints it and `<seed>` is the failing case's seed (decimal or
/// `0x`-prefixed hex). The `proptest!` macro replays every matching seed
/// before its random cases, so once-failing inputs stay fixed. A missing
/// file means no seeds; a malformed line panics — a typo must not silently
/// drop a regression.
pub fn regression_seeds(manifest_dir: &str, test_id: &str) -> Vec<u64> {
    let path = std::path::Path::new(manifest_dir)
        .join("proptest-regressions")
        .join("seeds.txt");
    let Ok(text) = std::fs::read_to_string(&path) else {
        return Vec::new();
    };
    let mut seeds = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(id), Some(seed), None) = (parts.next(), parts.next(), parts.next()) else {
            panic!(
                "{}:{}: expected `<test_id> <seed>`, got {line:?}",
                path.display(),
                ln + 1
            );
        };
        let parsed = match seed.strip_prefix("0x") {
            Some(hex) => u64::from_str_radix(hex, 16),
            None => seed.parse(),
        };
        let Ok(parsed) = parsed else {
            panic!("{}:{}: bad seed {seed:?}", path.display(), ln + 1);
        };
        if id == test_id {
            seeds.push(parsed);
        }
    }
    seeds
}

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed; the case is skipped, not failed.
    Reject(String),
    /// A `prop_assert*!` failed.
    Fail(String),
}

/// xoshiro256++ seeded from the test's module path: deterministic across
/// runs, distinct across tests.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a of the test name, mixed with a fixed generation tag so the
        // stream can be rotated wholesale if a seed proves unlucky.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::from_seed(h ^ 0x9e37_79b9_7f4a_7c15)
    }

    pub fn from_seed(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `0..n` (n > 0), via multiply-shift reduction.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
