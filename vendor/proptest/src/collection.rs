//! Collection strategies: `prop::collection::vec`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Inclusive-exclusive length bounds, mirroring proptest's `SizeRange`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
