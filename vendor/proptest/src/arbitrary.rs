//! `any::<T>()` — full-range arbitrary values for primitives.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Raw bit patterns: infinities and NaNs included, as with real proptest's
/// unfiltered `any::<f32>()`.
impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}
