//! Option strategies: `prop::option::of`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

pub struct OptionStrategy<S> {
    inner: S,
}

/// `None` half the time, like real proptest's default probability.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.next_u64() & 1 == 1 {
            Some(self.inner.sample(rng))
        } else {
            None
        }
    }
}
