//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators, regex string strategies, and the
//! `proptest!`/`prop_assert*!` macros this workspace's property tests use.
//! Sampling is deterministic per test: a master RNG seeded from the test's
//! module path deals out one seed per case, so failures reproduce exactly
//! and every failure message names the case seed. There is no shrinking —
//! the reported counterexample is the raw failing input — but a failing
//! seed can be committed to the crate's `proptest-regressions/seeds.txt`
//! (see [`test_runner::regression_seeds`]) and is then replayed before the
//! random cases on every run.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod prelude;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Declares property tests. Supports the standard forms:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u64..10, s in "[a-z]{1,4}") { prop_assert!(x < 10); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let test_id = concat!(module_path!(), "::", stringify!($name));
            // One case from one seed. Ok(true) = pass, Ok(false) = rejected
            // by prop_assume!, Err = failure (message includes the inputs).
            let run_case = |seed: u64| -> ::std::result::Result<bool, ::std::string::String> {
                let mut rng = $crate::test_runner::TestRng::from_seed(seed);
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let mut described = ::std::string::String::new();
                $(described.push_str(&::std::format!(
                    "  {} = {:?}\n",
                    stringify!($arg),
                    &$arg
                ));)+
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => ::std::result::Result::Ok(true),
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        ::std::result::Result::Ok(false)
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        ::std::result::Result::Err(::std::format!(
                            "{}\ninputs:\n{}",
                            msg,
                            described
                        ))
                    }
                }
            };
            // Committed regression seeds replay before any random case.
            for seed in $crate::test_runner::regression_seeds(env!("CARGO_MANIFEST_DIR"), test_id)
            {
                if let ::std::result::Result::Err(msg) = run_case(seed) {
                    panic!(
                        "proptest {} failed replaying regression seed {:#018x}: {}",
                        stringify!($name),
                        seed,
                        msg
                    );
                }
            }
            let mut master = $crate::test_runner::TestRng::deterministic(test_id);
            let mut passed: u32 = 0;
            let mut attempts: u32 = 0;
            while passed < config.cases {
                attempts += 1;
                if attempts > config.cases.saturating_mul(20).max(1000) {
                    panic!(
                        "proptest {}: too many rejected samples ({} attempts, {} passed)",
                        stringify!($name),
                        attempts,
                        passed
                    );
                }
                let seed = master.next_u64();
                match run_case(seed) {
                    ::std::result::Result::Ok(true) => passed += 1,
                    ::std::result::Result::Ok(false) => {}
                    ::std::result::Result::Err(msg) => {
                        panic!(
                            "proptest {} failed after {} passing case(s) with seed {seed:#018x}: {}\n\
                             to pin this case, add the line\n  {} {seed:#018x}\n\
                             to this crate's proptest-regressions/seeds.txt",
                            stringify!($name),
                            passed,
                            msg,
                            test_id
                        );
                    }
                }
            }
        }
    )*};
}

/// Uniform (or `weight => strategy` weighted) choice among strategies with a
/// common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(::std::vec![
            $(($weight, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::string::ToString::to_string(concat!(
                    "assertion failed: ",
                    stringify!($cond)
                )),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left_val, right_val) = (&$left, &$right);
        if !(*left_val == *right_val) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                    left_val,
                    right_val
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left_val, right_val) = (&$left, &$right);
        if !(*left_val == *right_val) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n{}",
                    left_val,
                    right_val,
                    ::std::format!($($fmt)+)
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left_val, right_val) = (&$left, &$right);
        if *left_val == *right_val {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `left != right`\n  both: {:?}",
                    left_val
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left_val, right_val) = (&$left, &$right);
        if *left_val == *right_val {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `left != right`\n  both: {:?}\n{}",
                    left_val,
                    ::std::format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Skips the current case (without counting it) when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::ToString::to_string(concat!(
                    "assumption failed: ",
                    stringify!($cond)
                )),
            ));
        }
    };
}
