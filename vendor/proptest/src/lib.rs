//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators, regex string strategies, and the
//! `proptest!`/`prop_assert*!` macros this workspace's property tests use.
//! Sampling is deterministic per test (seeded from the test's module path),
//! so failures reproduce exactly; there is no shrinking — the reported
//! counterexample is the raw failing input.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod prelude;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Declares property tests. Supports the standard forms:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u64..10, s in "[a-z]{1,4}") { prop_assert!(x < 10); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            let mut passed: u32 = 0;
            let mut attempts: u32 = 0;
            while passed < config.cases {
                attempts += 1;
                if attempts > config.cases.saturating_mul(20).max(1000) {
                    panic!(
                        "proptest {}: too many rejected samples ({} attempts, {} passed)",
                        stringify!($name),
                        attempts,
                        passed
                    );
                }
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let mut described = ::std::string::String::new();
                $(described.push_str(&::std::format!(
                    "  {} = {:?}\n",
                    stringify!($arg),
                    &$arg
                ));)+
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed after {} passing case(s): {}\ninputs:\n{}",
                            stringify!($name),
                            passed,
                            msg,
                            described
                        );
                    }
                }
            }
        }
    )*};
}

/// Uniform (or `weight => strategy` weighted) choice among strategies with a
/// common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(::std::vec![
            $(($weight, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::string::ToString::to_string(concat!(
                    "assertion failed: ",
                    stringify!($cond)
                )),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left_val, right_val) = (&$left, &$right);
        if !(*left_val == *right_val) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                    left_val,
                    right_val
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left_val, right_val) = (&$left, &$right);
        if !(*left_val == *right_val) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n{}",
                    left_val,
                    right_val,
                    ::std::format!($($fmt)+)
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left_val, right_val) = (&$left, &$right);
        if *left_val == *right_val {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `left != right`\n  both: {:?}",
                    left_val
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left_val, right_val) = (&$left, &$right);
        if *left_val == *right_val {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `left != right`\n  both: {:?}\n{}",
                    left_val,
                    ::std::format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Skips the current case (without counting it) when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::ToString::to_string(concat!(
                    "assumption failed: ",
                    stringify!($cond)
                )),
            ));
        }
    };
}
