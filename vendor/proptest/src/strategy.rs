//! The `Strategy` trait and combinators.
//!
//! Unlike real proptest there is no shrinking: a strategy is just a
//! deterministic sampler over a [`TestRng`]. That keeps the surface small
//! while preserving what the workspace's property tests rely on — coverage
//! and reproducibility.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// How many resamples a `prop_filter` attempts before giving up.
const MAX_FILTER_DRAWS: u32 = 10_000;

pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: whence.into(),
            f,
        }
    }

    /// Depth-bounded recursive strategies. `desired_size` and
    /// `expected_branch_size` are accepted for API compatibility; the stub
    /// bounds growth by `depth` alone.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf: BoxedStrategy<Self::Value> = self.boxed();
        let mut levels = vec![leaf.clone()];
        for _ in 0..depth {
            let prev = levels.last().expect("levels never empty").clone();
            // Children of the next level are either fresh leaves or nodes of
            // the previous level, like real proptest's recursive union.
            let inner = Union::new(vec![leaf.clone(), prev]).boxed();
            levels.push(recurse(inner).boxed());
        }
        Recursive { levels }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Type-erased strategy, cheaply cloneable.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

pub struct Filter<S, F> {
    inner: S,
    reason: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_FILTER_DRAWS {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter exhausted {MAX_FILTER_DRAWS} draws: {}",
            self.reason
        );
    }
}

/// Uniform (or weighted) choice among boxed alternatives; what `prop_oneof!`
/// builds.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
    weights: Option<Vec<u32>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union {
            options,
            weights: None,
        }
    }

    pub fn new_weighted(weighted: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(
            !weighted.is_empty(),
            "prop_oneof! needs at least one option"
        );
        let (weights, options) = weighted.into_iter().unzip();
        Union {
            options,
            weights: Some(weights),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = match &self.weights {
            None => rng.below(self.options.len() as u64) as usize,
            Some(ws) => {
                let total: u64 = ws.iter().map(|&w| u64::from(w)).sum();
                let mut pick = rng.below(total.max(1));
                let mut idx = 0;
                for (i, &w) in ws.iter().enumerate() {
                    if pick < u64::from(w) {
                        idx = i;
                        break;
                    }
                    pick -= u64::from(w);
                }
                idx
            }
        };
        self.options[idx].sample(rng)
    }
}

/// Product of `prop_recursive`: level 0 is the leaf strategy, level `k`
/// applies the recursion `k` times. Sampling picks a level uniformly, which
/// biases toward shallow-but-varied trees.
pub struct Recursive<T> {
    levels: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for Recursive<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let k = rng.below(self.levels.len() as u64) as usize;
        self.levels[k].sample(rng)
    }
}

macro_rules! tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(S0.0);
tuple_strategy!(S0.0, S1.1);
tuple_strategy!(S0.0, S1.1, S2.2);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7, S8.8);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7, S8.8, S9.9);

macro_rules! int_range_strategy {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(rng.below(span) as $u as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $u as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $u as $t)
            }
        }
    )*};
}

int_range_strategy!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
);

macro_rules! float_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);
