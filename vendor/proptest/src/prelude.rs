//! The usual `use proptest::prelude::*` surface.

pub use crate::arbitrary::{any, Arbitrary};
pub use crate::strategy::{BoxedStrategy, Just, Strategy};
pub use crate::test_runner::Config as ProptestConfig;
pub use crate::test_runner::TestCaseError;
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

pub use crate as prop;
