//! Regex-pattern string strategies: `"[a-z]{1,8}"` as a `Strategy<Value =
//! String>`, like real proptest's `&str` implementation.
//!
//! Supports the subset this workspace's tests use: literals, `.`, character
//! classes with ranges, groups, alternation, and the `?`/`*`/`+`/`{m}`/
//! `{m,n}` quantifiers. Unsupported syntax panics at sample time with a
//! pointer to this file.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Cap for unbounded quantifiers (`*`, `+`, `{m,}`).
const UNBOUNDED_CAP: u32 = 8;

#[derive(Debug, Clone)]
enum Node {
    /// Alternation of sequences.
    Alt(Vec<Node>),
    Seq(Vec<Node>),
    Repeat(Box<Node>, u32, u32),
    /// Inclusive char ranges; single chars are degenerate ranges.
    Class(Vec<(char, char)>),
    Literal(char),
    AnyChar,
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    pattern: &'a str,
}

impl<'a> Parser<'a> {
    fn new(pattern: &'a str) -> Self {
        Parser {
            chars: pattern.chars().peekable(),
            pattern,
        }
    }

    fn unsupported(&self, what: &str) -> ! {
        panic!(
            "regex strategy: unsupported {what} in pattern {:?} (extend vendor/proptest/src/string.rs)",
            self.pattern
        );
    }

    fn parse_alt(&mut self) -> Node {
        let mut branches = vec![self.parse_seq()];
        while self.chars.peek() == Some(&'|') {
            self.chars.next();
            branches.push(self.parse_seq());
        }
        if branches.len() == 1 {
            branches.pop().expect("one branch")
        } else {
            Node::Alt(branches)
        }
    }

    fn parse_seq(&mut self) -> Node {
        let mut items = Vec::new();
        while let Some(&c) = self.chars.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let atom = self.parse_atom();
            items.push(self.parse_quantified(atom));
        }
        Node::Seq(items)
    }

    fn parse_atom(&mut self) -> Node {
        match self.chars.next() {
            Some('(') => {
                let inner = self.parse_alt();
                if self.chars.next() != Some(')') {
                    self.unsupported("unclosed group");
                }
                inner
            }
            Some('[') => self.parse_class(),
            Some('.') => Node::AnyChar,
            Some('\\') => match self.chars.next() {
                Some(
                    c @ ('\\' | '.' | '-' | '(' | ')' | '[' | ']' | '{' | '}' | '|' | '?' | '*'
                    | '+'),
                ) => Node::Literal(c),
                Some('n') => Node::Literal('\n'),
                Some('t') => Node::Literal('\t'),
                Some('r') => Node::Literal('\r'),
                Some('d') => Node::Class(vec![('0', '9')]),
                Some('w') => Node::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
                other => self.unsupported(&format!("escape {other:?}")),
            },
            Some(c @ ('{' | '}' | '?' | '*' | '+')) => self.unsupported(&format!("dangling {c:?}")),
            Some(c) => Node::Literal(c),
            None => self.unsupported("empty atom"),
        }
    }

    fn parse_class(&mut self) -> Node {
        if self.chars.peek() == Some(&'^') {
            self.unsupported("negated class");
        }
        let mut ranges = Vec::new();
        loop {
            let c = match self.chars.next() {
                Some(']') => break,
                Some('\\') => match self.chars.next() {
                    Some(e @ ('\\' | ']' | '-' | '^')) => e,
                    Some('n') => '\n',
                    Some('t') => '\t',
                    Some('r') => '\r',
                    other => self.unsupported(&format!("class escape {other:?}")),
                },
                Some(c) => c,
                None => self.unsupported("unclosed class"),
            };
            // A `-` is a range if it sits between two chars; trailing `-` is
            // literal.
            if self.chars.peek() == Some(&'-') {
                let mut lookahead = self.chars.clone();
                lookahead.next();
                if lookahead.peek().is_some_and(|&n| n != ']') {
                    self.chars.next();
                    let hi = self.chars.next().expect("range end");
                    if hi < c {
                        self.unsupported("inverted class range");
                    }
                    ranges.push((c, hi));
                    continue;
                }
            }
            ranges.push((c, c));
        }
        if ranges.is_empty() {
            self.unsupported("empty class");
        }
        Node::Class(ranges)
    }

    fn parse_quantified(&mut self, atom: Node) -> Node {
        match self.chars.peek() {
            Some('?') => {
                self.chars.next();
                Node::Repeat(Box::new(atom), 0, 1)
            }
            Some('*') => {
                self.chars.next();
                Node::Repeat(Box::new(atom), 0, UNBOUNDED_CAP)
            }
            Some('+') => {
                self.chars.next();
                Node::Repeat(Box::new(atom), 1, UNBOUNDED_CAP)
            }
            Some('{') => {
                self.chars.next();
                let lo = self.parse_number();
                let hi = match self.chars.peek() {
                    Some(',') => {
                        self.chars.next();
                        if self.chars.peek() == Some(&'}') {
                            lo.max(UNBOUNDED_CAP)
                        } else {
                            self.parse_number()
                        }
                    }
                    _ => lo,
                };
                if self.chars.next() != Some('}') {
                    self.unsupported("unclosed quantifier");
                }
                if hi < lo {
                    self.unsupported("inverted quantifier");
                }
                Node::Repeat(Box::new(atom), lo, hi)
            }
            _ => atom,
        }
    }

    fn parse_number(&mut self) -> u32 {
        let mut n: u32 = 0;
        let mut any = false;
        while let Some(c) = self.chars.peek().and_then(|c| c.to_digit(10)) {
            self.chars.next();
            n = n * 10 + c;
            any = true;
        }
        if !any {
            self.unsupported("quantifier number");
        }
        n
    }
}

fn sample_node(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Alt(branches) => {
            let i = rng.below(branches.len() as u64) as usize;
            sample_node(&branches[i], rng, out);
        }
        Node::Seq(items) => {
            for item in items {
                sample_node(item, rng, out);
            }
        }
        Node::Repeat(inner, lo, hi) => {
            let n = *lo + rng.below(u64::from(hi - lo) + 1) as u32;
            for _ in 0..n {
                sample_node(inner, rng, out);
            }
        }
        Node::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|&(lo, hi)| hi as u64 - lo as u64 + 1)
                .sum();
            let mut pick = rng.below(total);
            for &(lo, hi) in ranges {
                let span = hi as u64 - lo as u64 + 1;
                if pick < span {
                    let c = char::from_u32(lo as u32 + pick as u32)
                        .expect("class range stays in scalar values");
                    out.push(c);
                    return;
                }
                pick -= span;
            }
            unreachable!("class pick within total");
        }
        Node::Literal(c) => out.push(*c),
        Node::AnyChar => out.push(sample_any_char(rng)),
    }
}

/// `.` matches any char except `\n`. Weighted toward printable ASCII but
/// deliberately emitting tabs, carriage returns, backslashes, and multi-byte
/// unicode to exercise escaping paths.
fn sample_any_char(rng: &mut TestRng) -> char {
    match rng.below(10) {
        0 => *['\t', '\r', '\\', '\u{7f}']
            .get(rng.below(4) as usize)
            .expect("index below 4"),
        1 | 2 => loop {
            // Arbitrary non-ASCII scalar values (skipping surrogates).
            let v = 0x80 + rng.below(0x2_0000 - 0x80) as u32;
            if let Some(c) = char::from_u32(v) {
                break c;
            }
        },
        _ => char::from_u32(0x20 + rng.below(0x5f) as u32).expect("printable ascii"),
    }
}

impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let ast = Parser::new(self).parse_alt();
        let mut out = String::new();
        sample_node(&ast, rng, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    fn samples(pattern: &'static str, n: usize) -> Vec<String> {
        let mut rng = TestRng::deterministic("string::tests");
        (0..n).map(|_| pattern.sample(&mut rng)).collect()
    }

    #[test]
    fn class_with_quantifier() {
        for s in samples("[a-z0-9-]{1,10}", 200) {
            assert!((1..=10).contains(&s.chars().count()), "{s:?}");
            assert!(
                s.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'),
                "{s:?}"
            );
        }
    }

    #[test]
    fn alternation_and_optional_group() {
        for s in samples("(SELECT|select|SeLeCt)", 50) {
            assert!(
                ["SELECT", "select", "SeLeCt"].contains(&s.as_str()),
                "{s:?}"
            );
        }
        for s in samples("(FROM [a-z]{1,8})?", 50) {
            assert!(s.is_empty() || s.starts_with("FROM "), "{s:?}");
        }
    }

    #[test]
    fn dot_never_emits_newline() {
        for s in samples(".{0,80}", 200) {
            assert!(!s.contains('\n'), "{s:?}");
            assert!(s.chars().count() <= 80, "{s:?}");
        }
    }

    #[test]
    fn literal_dot_inside_class() {
        for s in samples("[0-9.]{1,15}", 100) {
            assert!(s.chars().all(|c| c.is_ascii_digit() || c == '.'), "{s:?}");
        }
    }
}
