//! Offline stand-in for `serde`.
//!
//! Exposes the `Serialize`/`Deserialize` trait names and the derive macros
//! under the usual paths so `use serde::{Deserialize, Serialize}` plus
//! `#[derive(Serialize, Deserialize)]` compiles unchanged. The derives expand
//! to nothing and the traits are blanket-implemented, because nothing in this
//! workspace actually serializes — the derives only mark types that would be
//! serializable with the real crate.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker trait mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

pub mod ser {
    pub use super::Serialize;
}
