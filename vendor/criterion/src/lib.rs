//! Offline stand-in for `criterion`.
//!
//! A real measuring harness (warm-up, repeated samples, mean/min reporting,
//! throughput) behind criterion's `benchmark_group` / `Bencher` API, minus
//! the statistical machinery and HTML reports. Benchmark ids can be filtered
//! with positional CLI args, as under `cargo bench -- <filter>`.
//!
//! Set `SQLOG_BENCH_JSON=<path>` to append one JSON line per benchmark:
//! `{"id": ..., "mean_ns": ..., "min_ns": ..., "throughput_per_sec": ...}`.

use std::hint;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

#[derive(Debug, Clone, Copy)]
struct SampleCfg {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for SampleCfg {
    fn default() -> Self {
        SampleCfg {
            sample_size: 20,
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Measurement {
    mean_ns: f64,
    min_ns: f64,
}

pub struct Criterion {
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Positional args are substring filters; flags (`--bench` etc. from
        // cargo) are ignored.
        let filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        Criterion { filters }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            cfg: SampleCfg::default(),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let cfg = SampleCfg::default();
        run_benchmark(self, id, cfg, None, f);
        self
    }

    fn selected(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f.as_str()))
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    cfg: SampleCfg,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.cfg.sample_size = n.max(2);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.warm_up = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.measurement = d;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = format!("{}/{}", self.name, id);
        run_benchmark(self.criterion, &full_id, self.cfg, self.throughput, f);
        self
    }

    pub fn finish(self) {}
}

fn run_benchmark<F>(
    criterion: &Criterion,
    id: &str,
    cfg: SampleCfg,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    if !criterion.selected(id) {
        return;
    }
    let mut bencher = Bencher { cfg, result: None };
    f(&mut bencher);
    let Some(m) = bencher.result else {
        eprintln!("{id:<50} (no measurement recorded)");
        return;
    };
    let per_sec = throughput.map(|t| {
        let units = match t {
            Throughput::Elements(n) | Throughput::Bytes(n) | Throughput::BytesDecimal(n) => n,
        };
        units as f64 / (m.mean_ns / 1e9)
    });
    match per_sec {
        Some(rate) => println!(
            "{id:<50} time: [{:>12} mean, {:>12} min]   thrpt: {}/s",
            fmt_ns(m.mean_ns),
            fmt_ns(m.min_ns),
            fmt_rate(rate)
        ),
        None => println!(
            "{id:<50} time: [{:>12} mean, {:>12} min]",
            fmt_ns(m.mean_ns),
            fmt_ns(m.min_ns)
        ),
    }
    if let Ok(path) = std::env::var("SQLOG_BENCH_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let thrpt = per_sec
                .map(|r| format!("{r:.1}"))
                .unwrap_or_else(|| "null".to_string());
            let _ = writeln!(
                file,
                "{{\"id\": \"{id}\", \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"throughput_per_sec\": {thrpt}}}",
                m.mean_ns, m.min_ns
            );
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

fn fmt_rate(rate: f64) -> String {
    if rate >= 1e6 {
        format!("{:.4} M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.4} K", rate / 1e3)
    } else {
        format!("{rate:.2}")
    }
}

pub struct Bencher {
    cfg: SampleCfg,
    result: Option<Measurement>,
}

impl Bencher {
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up, and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(f());
            warm_iters += 1;
            if warm_start.elapsed() >= self.cfg.warm_up {
                break;
            }
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);

        // Split the measurement budget into samples of >= 1 iteration.
        let budget_ns = self.cfg.measurement.as_nanos() as f64;
        let per_sample = ((budget_ns / self.cfg.sample_size as f64) / est_ns).ceil() as u64;
        let per_sample = per_sample.max(1);

        let mut means = Vec::with_capacity(self.cfg.sample_size);
        let run_start = Instant::now();
        for _ in 0..self.cfg.sample_size {
            let t0 = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            means.push(t0.elapsed().as_nanos() as f64 / per_sample as f64);
            // Never exceed ~2x the requested measurement budget.
            if run_start.elapsed().as_nanos() as f64 > 2.0 * budget_ns {
                break;
            }
        }
        self.record(&means);
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        loop {
            let input = setup();
            black_box(routine(input));
            if warm_start.elapsed() >= self.cfg.warm_up {
                break;
            }
        }

        let budget = self.cfg.measurement;
        let mut means = Vec::with_capacity(self.cfg.sample_size);
        let run_start = Instant::now();
        for _ in 0..self.cfg.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            means.push(t0.elapsed().as_nanos() as f64);
            if run_start.elapsed() >= budget {
                break;
            }
        }
        self.record(&means);
    }

    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        self.iter_batched(
            &mut setup,
            |mut input| black_box(routine(&mut input)),
            _size,
        );
    }

    fn record(&mut self, means: &[f64]) {
        if means.is_empty() {
            return;
        }
        let mean = means.iter().sum::<f64>() / means.len() as f64;
        let min = means.iter().copied().fold(f64::INFINITY, f64::min);
        self.result = Some(Measurement {
            mean_ns: mean,
            min_ns: min,
        });
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
