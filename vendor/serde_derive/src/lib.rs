//! Offline stand-in for `serde_derive`.
//!
//! This workspace derives `Serialize`/`Deserialize` on its public types so
//! downstream users can plug in real serde, but none of the in-tree code
//! serializes anything. The build environment has no registry access, so the
//! derives here accept the same syntax (including `#[serde(...)]` attributes)
//! and expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
