//! Offline stand-in for `rand` 0.9.
//!
//! Implements exactly the surface this workspace uses — `SmallRng` seeded via
//! `seed_from_u64`, `Rng::random_range` over integer/float ranges, and
//! `Rng::random_bool` — with a real xoshiro256++ generator (the same family
//! rand's `SmallRng` uses on 64-bit targets). Deterministic for a given seed,
//! which is all the generators and tests here rely on.

use std::ops::{Range, RangeInclusive};

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface; only the `u64` convenience constructor is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// A range that can produce a uniform sample of `T`.
///
/// Like real rand, the only impls are the blanket ones over
/// [`SampleUniform`] — a single applicable impl per range shape is what lets
/// type inference flow from `rng.random_range(20..80).min(x)` to the type of
/// `x`.
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut impl RngCore) -> T;
}

/// Types uniformly sampleable from half-open and inclusive bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform in `[lo, hi)`; caller guarantees `lo < hi`.
    fn sample_half_open(lo: Self, hi: Self, rng: &mut impl RngCore) -> Self;
    /// Uniform in `[lo, hi]`; caller guarantees `lo <= hi`.
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut impl RngCore) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from(self, rng: &mut impl RngCore) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from(self, rng: &mut impl RngCore) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Maps a raw `u64` to `[0, 1)` with 53 bits of precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Multiply-shift reduction of a raw `u64` onto `0..n` (n > 0).
fn reduce(bits: u64, n: u64) -> u64 {
    ((u128::from(bits) * u128::from(n)) >> 64) as u64
}

macro_rules! int_sample_uniform {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(lo: Self, hi: Self, rng: &mut impl RngCore) -> Self {
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                lo.wrapping_add(reduce(rng.next_u64(), span) as $u as $t)
            }
            fn sample_inclusive(lo: Self, hi: Self, rng: &mut impl RngCore) -> Self {
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $u as $t;
                }
                lo.wrapping_add(reduce(rng.next_u64(), span + 1) as $u as $t)
            }
        }
    )*};
}

int_sample_uniform!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
);

macro_rules! float_sample_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(lo: Self, hi: Self, rng: &mut impl RngCore) -> Self {
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
            fn sample_inclusive(lo: Self, hi: Self, rng: &mut impl RngCore) -> Self {
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — rand's own `SmallRng` algorithm on 64-bit targets.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the standard way to seed xoshiro.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..=u64::MAX),
                b.random_range(0u64..=u64::MAX)
            );
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(20..80);
            assert!((20..80).contains(&v));
            let w = rng.random_range(1..=3u64);
            assert!((1..=3).contains(&w));
            let f = rng.random_range(-90.0..90.0);
            assert!((-90.0..90.0).contains(&f));
            let n = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn random_bool_respects_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            assert!(!rng.random_bool(0.0));
            assert!(rng.random_bool(1.0));
        }
    }

    #[test]
    fn full_u64_range_does_not_panic() {
        let mut rng = SmallRng::seed_from_u64(3);
        let _ = rng.random_range(0u64..=u64::MAX);
    }
}
