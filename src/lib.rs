//! # sqlog — cleaning antipatterns in SQL query logs
//!
//! A production-quality Rust reproduction of *"Cleaning Antipatterns in an
//! SQL Query Log"* (N. Arzamasova, M. Schäler, K. Böhm, 2018): a framework
//! that discovers **patterns** (recurring query-template sequences) and
//! **antipatterns** (patterns with negative effects — the DW/DS/DF Stifle
//! classes, Circuitous Treasure Hunt candidates, `= NULL` misuse) in an SQL
//! query log, and *solves* the solvable ones by rewriting, producing a clean
//! log for unbiased downstream analyses.
//!
//! This crate is the umbrella: it re-exports the workspace crates under one
//! namespace and hosts the examples and cross-crate integration tests.
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`sql`] | `sqlog-sql` | SQL lexer, parser, AST, printer |
//! | [`skeleton`] | `sqlog-skeleton` | skeleton queries, templates, predicate profiles |
//! | [`logmodel`] | `sqlog-log` | log entries, I/O, timestamps, ground truth |
//! | [`gen`] | `sqlog-gen` | synthetic SkyServer-like workload generator |
//! | [`catalog`] | `sqlog-catalog` | schema catalog with key metadata |
//! | [`core`] | `sqlog-core` | the cleaning pipeline: dedup → parse → mine → detect → solve |
//! | [`minidb`] | `sqlog-minidb` | in-memory SQL engine with a round-trip cost model |
//! | [`cluster`] | `sqlog-cluster` | data-space-overlap query clustering |
//! | [`obs`] | `sqlog-obs` | structured tracing + metrics: spans, counters, histograms, NDJSON export |
//!
//! ## Quickstart
//!
//! ```
//! use sqlog::core::Pipeline;
//! use sqlog::catalog::skyserver_catalog;
//! use sqlog::logmodel::{LogEntry, QueryLog, Timestamp};
//!
//! let catalog = skyserver_catalog();
//! let log = QueryLog::from_entries(vec![
//!     LogEntry::minimal(0, "SELECT name FROM Employee WHERE empId = 8",
//!                       Timestamp::from_secs(0)).with_user("10.0.0.1"),
//!     LogEntry::minimal(1, "SELECT name FROM Employee WHERE empId = 1",
//!                       Timestamp::from_secs(2)).with_user("10.0.0.1"),
//! ]);
//! let result = Pipeline::new(&catalog).run(&log);
//! assert_eq!(result.stats.solved_instances, 1);   // one DW-Stifle merged
//! ```

#![warn(missing_docs)]

/// Schema catalog (re-export of `sqlog-catalog`).
pub use sqlog_catalog as catalog;
/// Query clustering (re-export of `sqlog-cluster`).
pub use sqlog_cluster as cluster;
/// The cleaning framework (re-export of `sqlog-core`).
pub use sqlog_core as core;
/// Workload generator (re-export of `sqlog-gen`).
pub use sqlog_gen as gen;
/// Log model (re-export of `sqlog-log`).
pub use sqlog_log as logmodel;
/// In-memory SQL engine (re-export of `sqlog-minidb`).
pub use sqlog_minidb as minidb;
/// Observability: spans, counters, histograms, NDJSON export (re-export of
/// `sqlog-obs`).
pub use sqlog_obs as obs;
/// Skeletons and templates (re-export of `sqlog-skeleton`).
pub use sqlog_skeleton as skeleton;
/// SQL front end (re-export of `sqlog-sql`).
pub use sqlog_sql as sql;
