//! `sqlog-report` — inspect and compare sqlog run reports.
//!
//! Works on the run-report JSON written by `sqlog-clean --stats-json`, or
//! on the run-ledger entries appended by `--ledger DIR` (a directory of
//! schema-versioned run summaries; see `sqlog-obs`'s ledger module).
//!
//! ```text
//! sqlog-report show  (STATS.json | --ledger DIR)
//! sqlog-report diff  (OLD.json NEW.json | --ledger DIR)
//!                    [--max-stage-ratio R]  per-stage slowdown gate (default 1.5)
//!                    [--min-stage-ms MS]    ignore stages faster than this (default 50)
//!                    [--max-mem-ratio R]    peak-RSS growth gate (default 1.5)
//! ```
//!
//! `show` renders a terminal dashboard: per-stage wall and self time,
//! shard count and imbalance factor, p50/p95/p99 shard latency from the
//! log2 histograms, parse-cache hit rate, memory accounting, and the run
//! health verdict.
//!
//! `diff` compares two runs metric by metric and renders a verdict table.
//! A metric **regresses** when it slows down (or grows) past its ratio
//! gate; stages faster than `--min-stage-ms` in both runs are ignored as
//! noise. With `--ledger DIR` the last two entries are compared — the
//! natural CI gate: run the corpus, append to the ledger, diff.
//!
//! Exit codes: **0** = no regression; **2** = at least one regression;
//! **1** = fatal error (bad usage, unreadable or unparsable input).

use sqlog::core::{RunReport, StageTimings};
use sqlog::obs::{Json, Ledger, LedgerEntry};
use std::process::exit;

const USAGE: &str = "usage:
  sqlog-report show  (STATS.json | --ledger DIR)
  sqlog-report diff  (OLD.json NEW.json | --ledger DIR)
                     [--max-stage-ratio R] [--min-stage-ms MS] [--max-mem-ratio R]

Inputs may be run-report JSON files (from sqlog-clean --stats-json) or
individual run-ledger entry files; --ledger DIR reads the newest entries
from a ledger directory instead.";

fn fatal(msg: &str) -> ! {
    eprintln!("error: {msg}");
    exit(1);
}

/// One loaded run: the report plus an optional ledger envelope. `report`
/// is `None` for ledger entries of a non-pipeline kind (e.g. `"conform"`),
/// whose embedded report follows its own schema.
struct LoadedRun {
    label: String,
    report: Option<RunReport>,
    entry: Option<LedgerEntry>,
}

impl LoadedRun {
    /// The pipeline run report, or a fatal error for entries of another
    /// kind (used by `diff`, which only compares pipeline runs).
    fn pipeline_report(&self) -> &RunReport {
        self.report.as_ref().unwrap_or_else(|| {
            let kind = self
                .entry
                .as_ref()
                .map(|e| e.kind.as_str())
                .unwrap_or("unknown");
            fatal(&format!(
                "{}: kind {kind:?} entries carry no pipeline run report; \
                 diff compares \"clean\" runs",
                self.label
            ))
        })
    }
}

/// Parses the report embedded in a ledger entry. Pipeline entries (kind
/// `"clean"`) must carry a well-formed run report; other kinds embed their
/// own schema and are rendered generically by `show`.
fn embedded_report(label: &str, entry: &LedgerEntry) -> Option<RunReport> {
    match RunReport::from_json(&entry.report) {
        Ok(report) => Some(report),
        Err(e) if entry.kind == "clean" => fatal(&format!("{label}: ledger entry report: {e}")),
        Err(_) => None,
    }
}

/// Parses a file that is either a bare run report or a ledger entry
/// wrapping one.
fn load_report_file(path: &str) -> LoadedRun {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fatal(&format!("cannot read {path}: {e}")));
    let v = Json::parse(&text).unwrap_or_else(|e| fatal(&format!("{path}: {e}")));
    if let Ok(report) = RunReport::from_json(&v) {
        return LoadedRun {
            label: path.to_string(),
            report: Some(report),
            entry: None,
        };
    }
    match LedgerEntry::from_json(&v) {
        Ok(entry) => LoadedRun {
            label: path.to_string(),
            report: embedded_report(path, &entry),
            entry: Some(entry),
        },
        Err(e) => fatal(&format!(
            "{path}: neither a run report nor a ledger entry: {e}"
        )),
    }
}

/// Loads the newest `n` entries of a ledger, oldest first.
fn load_ledger_tail(dir: &str, n: usize) -> Vec<LoadedRun> {
    let ledger =
        Ledger::open(dir).unwrap_or_else(|e| fatal(&format!("cannot open ledger {dir}: {e}")));
    let (entries, warnings) = ledger
        .entries()
        .unwrap_or_else(|e| fatal(&format!("cannot read ledger {dir}: {e}")));
    for w in &warnings {
        eprintln!("warning: {w}");
    }
    if entries.len() < n {
        fatal(&format!(
            "ledger {dir} has {} readable entr{}, need {n}",
            entries.len(),
            if entries.len() == 1 { "y" } else { "ies" }
        ));
    }
    let skip = entries.len() - n;
    entries
        .into_iter()
        .skip(skip)
        .map(|(path, entry)| {
            let label = path.display().to_string();
            LoadedRun {
                report: embedded_report(&label, &entry),
                label,
                entry: Some(entry),
            }
        })
        .collect()
}

/// Accessor for one named wall-clock stage of [`StageTimings`].
type StagePick = fn(&StageTimings) -> u64;

/// The named wall-clock stages of [`StageTimings`], in pipeline order.
const STAGES: [(&str, StagePick); 9] = [
    ("ingest", |t| t.ingest_ms),
    ("sort", |t| t.sort_ms),
    ("dedup", |t| t.dedup_ms),
    ("parse", |t| t.parse_ms),
    ("sessions", |t| t.sessions_ms),
    ("mine", |t| t.mine_ms),
    ("detect", |t| t.detect_ms),
    ("solve", |t| t.solve_ms),
    ("report", |t| t.report_ms),
];

fn fmt_bytes(b: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = b as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{b} B")
    } else {
        format!("{value:.1} {}", UNITS[unit])
    }
}

fn fmt_unix_ms(ms: u64) -> String {
    // Days-from-civil inverse (Howard Hinnant's algorithm), UTC. Avoids a
    // date-time dependency for one timestamp field.
    let secs = (ms / 1000) as i64;
    let days = secs.div_euclid(86_400);
    let rem = secs.rem_euclid(86_400);
    let (h, m, s) = (rem / 3600, (rem % 3600) / 60, rem % 60);
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let mo = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if mo <= 2 { y + 1 } else { y };
    format!("{y:04}-{mo:02}-{d:02} {h:02}:{m:02}:{s:02}Z")
}

fn run_health_line(report: &RunReport) -> String {
    let h = &report.stats.run_health;
    if h.is_clean() && h.interruptions == 0 {
        "clean".to_string()
    } else if h.is_clean() {
        format!(
            "clean (resumed after {} interruption{})",
            h.interruptions,
            if h.interruptions == 1 { "" } else { "s" }
        )
    } else {
        format!(
            "degraded (quarantined {}, invalid utf8 {}, limit rejected {}, \
             poison records {}, poison sessions {}, degraded shards {})",
            h.quarantined_lines,
            h.invalid_utf8_lines,
            h.limit_rejected,
            h.poison_records,
            h.poison_sessions,
            h.degraded_shards
        )
    }
}

/// Flat key/value rendering for non-pipeline reports (e.g. a conformance
/// run): top-level scalars, then one indented block per nested object.
fn show_generic(report: &Json) {
    let Json::Obj(fields) = report else {
        println!("{}", report.render());
        return;
    };
    for (key, value) in fields {
        match value {
            Json::Obj(inner) => {
                println!("{key}:");
                for (k, v) in inner {
                    if !matches!(v, Json::Obj(_) | Json::Arr(_)) {
                        println!("  {k:<30} {}", v.render());
                    }
                }
            }
            Json::Arr(items) => println!("{key:<32} [{} items]", items.len()),
            scalar => println!("{key:<32} {}", scalar.render()),
        }
    }
}

fn cmd_show(run: &LoadedRun) {
    println!("run report: {}", run.label);
    if let Some(entry) = &run.entry {
        println!(
            "  kind {}  recorded {}  config fp {:016x}  input {} (fnv {:016x})",
            entry.kind,
            fmt_unix_ms(entry.created_unix_ms),
            entry.config_fingerprint,
            fmt_bytes(entry.input_bytes),
            entry.input_fnv
        );
        println!(
            "  machine: {}/{} · {} cpu{} · {}",
            entry.machine.os,
            entry.machine.arch,
            entry.machine.cpus,
            if entry.machine.cpus == 1 { "" } else { "s" },
            if entry.machine.hostname.is_empty() {
                "<unknown host>"
            } else {
                &entry.machine.hostname
            }
        );
    }
    println!();

    let Some(report) = &run.report else {
        // Non-pipeline entry: no stage table to draw; show the embedded
        // report's own fields instead.
        show_generic(&run.entry.as_ref().expect("report or entry").report);
        return;
    };
    let stats = &report.stats;

    println!(
        "{:<10} {:>9} {:>11} {:>7} {:>9} {:>9} {:>9} {:>9}",
        "stage", "wall ms", "self us", "shards", "imbal", "p50 us", "p95 us", "p99 us"
    );
    for (name, pick) in STAGES {
        let wall = pick(&stats.timings);
        let summary = report.obs.stages.get(name);
        let hist = report.obs.histograms.get(&format!("{name}.shard_us"));
        let (self_us, shards, imbalance) = summary
            .map(|s| (s.total_us, s.shards.len(), s.imbalance))
            .unwrap_or((0, 0, 0.0));
        let (p50, p95, p99) = hist
            .filter(|h| h.count > 0)
            .map(|h| (h.p50(), h.p95(), h.p99()))
            .unwrap_or((0, 0, 0));
        let imbal = if imbalance > 0.0 {
            format!("{imbalance:.2}x")
        } else {
            "-".to_string()
        };
        println!(
            "{name:<10} {wall:>9} {self_us:>11} {shards:>7} {imbal:>9} {p50:>9} {p95:>9} {p99:>9}"
        );
    }
    println!(
        "{:<10} {:>9}   (stage sum {} ms)",
        "total",
        stats.timings.total_ms,
        stats.timings.stage_sum_ms()
    );
    println!();

    let c = &stats.parse_cache;
    if c.enabled {
        let lookups = c.hits + c.misses + c.fallbacks;
        let rate = if lookups > 0 {
            c.hits as f64 * 100.0 / lookups as f64
        } else {
            0.0
        };
        println!(
            "parse cache: {rate:.1}% hit rate ({} hits, {} misses, {} fallbacks)",
            c.hits, c.misses, c.fallbacks
        );
    } else {
        println!("parse cache: disabled");
    }

    let throughput = throughput_qps(report);
    println!(
        "throughput: {} statements in {} ms{}",
        stats.original_size,
        stats.timings.total_ms,
        throughput
            .map(|t| format!(" ({t:.0} stmt/s)"))
            .unwrap_or_default()
    );

    let mem_rows: Vec<(String, u64)> = report
        .obs
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("mem.") || k.starts_with("checkpoint.bytes."))
        .map(|(k, v)| (k.clone(), *v))
        .collect();
    if mem_rows.is_empty() {
        println!("memory: not recorded");
    } else {
        println!("memory:");
        for (k, v) in mem_rows {
            println!("  {k:<32} {}", fmt_bytes(v));
        }
    }

    println!("run health: {}", run_health_line(report));
    if !report.obs.warnings.is_empty() {
        println!("warnings ({}):", report.obs.warnings.len());
        for w in &report.obs.warnings {
            println!("  {w}");
        }
    }
}

/// Statements per second over the whole run; `None` when the run was too
/// fast to time (total_ms == 0).
fn throughput_qps(report: &RunReport) -> Option<f64> {
    let ms = report.stats.timings.total_ms;
    if ms == 0 {
        return None;
    }
    Some(report.stats.original_size as f64 * 1000.0 / ms as f64)
}

fn peak_rss(report: &RunReport) -> Option<u64> {
    report.obs.counters.get("mem.peak_rss_bytes").copied()
}

struct DiffGates {
    max_stage_ratio: f64,
    min_stage_ms: u64,
    max_mem_ratio: f64,
}

enum Verdict {
    Ok,
    Improved,
    Regressed,
    Skipped(&'static str),
}

struct DiffRow {
    metric: String,
    old: String,
    new: String,
    change: String,
    verdict: Verdict,
}

/// Ratio-gated comparison of a "lower is better" metric.
fn gate_slowdown(old: u64, new: u64, ratio: f64) -> Verdict {
    if old == 0 && new == 0 {
        return Verdict::Ok;
    }
    if old == 0 {
        // Nothing to scale a ratio from; flag only clearly material growth.
        return Verdict::Ok;
    }
    let r = new as f64 / old as f64;
    if r > ratio {
        Verdict::Regressed
    } else if r < 1.0 / ratio {
        Verdict::Improved
    } else {
        Verdict::Ok
    }
}

fn change_pct(old: f64, new: f64) -> String {
    if old == 0.0 {
        return "-".to_string();
    }
    let pct = (new - old) * 100.0 / old;
    format!("{pct:+.1}%")
}

fn diff_rows(old: &RunReport, new: &RunReport, gates: &DiffGates) -> Vec<DiffRow> {
    let mut rows = Vec::new();

    for (name, pick) in STAGES {
        let (o, n) = (pick(&old.stats.timings), pick(&new.stats.timings));
        let verdict = if o < gates.min_stage_ms && n < gates.min_stage_ms {
            Verdict::Skipped("below --min-stage-ms")
        } else {
            gate_slowdown(o, n, gates.max_stage_ratio)
        };
        rows.push(DiffRow {
            metric: format!("stage {name} (ms)"),
            old: o.to_string(),
            new: n.to_string(),
            change: change_pct(o as f64, n as f64),
            verdict,
        });
    }

    let (o, n) = (old.stats.timings.total_ms, new.stats.timings.total_ms);
    let verdict = if o < gates.min_stage_ms && n < gates.min_stage_ms {
        Verdict::Skipped("below --min-stage-ms")
    } else {
        gate_slowdown(o, n, gates.max_stage_ratio)
    };
    rows.push(DiffRow {
        metric: "total (ms)".to_string(),
        old: o.to_string(),
        new: n.to_string(),
        change: change_pct(o as f64, n as f64),
        verdict,
    });

    // Throughput is total-time derived, so it inherits the same gate; it
    // exists as its own row because CI thresholds are easier to reason
    // about in statements/second than in milliseconds.
    match (throughput_qps(old), throughput_qps(new)) {
        (Some(ot), Some(nt)) => {
            let verdict = if old.stats.timings.total_ms < gates.min_stage_ms
                && new.stats.timings.total_ms < gates.min_stage_ms
            {
                Verdict::Skipped("below --min-stage-ms")
            } else if nt * gates.max_stage_ratio < ot {
                Verdict::Regressed
            } else if ot * gates.max_stage_ratio < nt {
                Verdict::Improved
            } else {
                Verdict::Ok
            };
            rows.push(DiffRow {
                metric: "throughput (stmt/s)".to_string(),
                old: format!("{ot:.0}"),
                new: format!("{nt:.0}"),
                change: change_pct(ot, nt),
                verdict,
            });
        }
        _ => rows.push(DiffRow {
            metric: "throughput (stmt/s)".to_string(),
            old: "-".to_string(),
            new: "-".to_string(),
            change: "-".to_string(),
            verdict: Verdict::Skipped("run too fast to time"),
        }),
    }

    match (peak_rss(old), peak_rss(new)) {
        (Some(o), Some(n)) => rows.push(DiffRow {
            metric: "peak RSS".to_string(),
            old: fmt_bytes(o),
            new: fmt_bytes(n),
            change: change_pct(o as f64, n as f64),
            verdict: gate_slowdown(o, n, gates.max_mem_ratio),
        }),
        _ => rows.push(DiffRow {
            metric: "peak RSS".to_string(),
            old: "-".to_string(),
            new: "-".to_string(),
            change: "-".to_string(),
            verdict: Verdict::Skipped("not recorded in both runs"),
        }),
    }

    rows
}

fn cmd_diff(old: &LoadedRun, new: &LoadedRun, gates: &DiffGates) -> i32 {
    println!("old: {}", old.label);
    println!("new: {}", new.label);
    if let (Some(a), Some(b)) = (&old.entry, &new.entry) {
        if a.config_fingerprint != b.config_fingerprint {
            println!(
                "note: config fingerprints differ ({:016x} vs {:016x}) — \
                 runs are not like-for-like",
                a.config_fingerprint, b.config_fingerprint
            );
        }
        if a.input_fnv != b.input_fnv {
            println!("note: input files differ — runs are not like-for-like");
        }
    }
    println!(
        "gates: stage ratio {:.2}x over {} ms, memory ratio {:.2}x",
        gates.max_stage_ratio, gates.min_stage_ms, gates.max_mem_ratio
    );
    println!();
    println!(
        "{:<22} {:>12} {:>12} {:>8}  verdict",
        "metric", "old", "new", "change"
    );
    let rows = diff_rows(old.pipeline_report(), new.pipeline_report(), gates);
    let mut regressions = 0usize;
    for row in &rows {
        let verdict = match &row.verdict {
            Verdict::Ok => "ok".to_string(),
            Verdict::Improved => "improved".to_string(),
            Verdict::Regressed => {
                regressions += 1;
                "REGRESSED".to_string()
            }
            Verdict::Skipped(why) => format!("skipped ({why})"),
        };
        println!(
            "{:<22} {:>12} {:>12} {:>8}  {verdict}",
            row.metric, row.old, row.new, row.change
        );
    }
    println!();
    if regressions > 0 {
        println!(
            "verdict: {regressions} regression{} detected",
            if regressions == 1 { "" } else { "s" }
        );
        2
    } else {
        println!("verdict: no regressions");
        0
    }
}

fn parse_f64(flag: &str, value: Option<String>) -> f64 {
    let v = value.unwrap_or_else(|| fatal(&format!("{flag} needs a value")));
    let parsed: f64 = v
        .parse()
        .unwrap_or_else(|_| fatal(&format!("{flag}: not a number: {v}")));
    if !parsed.is_finite() || parsed < 1.0 {
        fatal(&format!("{flag}: must be a finite ratio >= 1.0, got {v}"));
    }
    parsed
}

/// Restores the default SIGPIPE disposition so `sqlog-report show | head`
/// terminates quietly instead of panicking on the closed pipe. Rust's
/// runtime ignores SIGPIPE by default, which suits servers but not a
/// terminal tool whose output is routinely paged.
#[cfg(unix)]
fn reset_sigpipe() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGPIPE: i32 = 13;
    const SIG_DFL: usize = 0;
    unsafe {
        signal(SIGPIPE, SIG_DFL);
    }
}

#[cfg(not(unix))]
fn reset_sigpipe() {}

fn main() {
    reset_sigpipe();
    let mut argv = std::env::args().skip(1);
    let cmd = argv.next().unwrap_or_else(|| {
        eprintln!("{USAGE}");
        exit(1)
    });

    let mut files: Vec<String> = Vec::new();
    let mut ledger_dir: Option<String> = None;
    let mut gates = DiffGates {
        max_stage_ratio: 1.5,
        min_stage_ms: 50,
        max_mem_ratio: 1.5,
    };
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--ledger" => {
                ledger_dir = Some(argv.next().unwrap_or_else(|| fatal("--ledger needs a dir")))
            }
            "--max-stage-ratio" => gates.max_stage_ratio = parse_f64(&arg, argv.next()),
            "--max-mem-ratio" => gates.max_mem_ratio = parse_f64(&arg, argv.next()),
            "--min-stage-ms" => {
                let v = argv
                    .next()
                    .unwrap_or_else(|| fatal("--min-stage-ms needs a value"));
                gates.min_stage_ms = v
                    .parse()
                    .unwrap_or_else(|_| fatal(&format!("--min-stage-ms: not a number: {v}")));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            _ if arg.starts_with("--") => fatal(&format!("unknown flag {arg}\n{USAGE}")),
            _ => files.push(arg),
        }
    }

    match cmd.as_str() {
        "show" => {
            let run = match (&ledger_dir, files.as_slice()) {
                (Some(dir), []) => load_ledger_tail(dir, 1).pop().expect("tail of 1"),
                (None, [path]) => load_report_file(path),
                _ => fatal(&format!(
                    "show takes one report file or --ledger DIR\n{USAGE}"
                )),
            };
            cmd_show(&run);
        }
        "diff" => {
            let (old, new) = match (&ledger_dir, files.as_slice()) {
                (Some(dir), []) => {
                    let mut tail = load_ledger_tail(dir, 2);
                    let new = tail.pop().expect("tail of 2");
                    let old = tail.pop().expect("tail of 2");
                    (old, new)
                }
                (None, [a, b]) => (load_report_file(a), load_report_file(b)),
                _ => fatal(&format!(
                    "diff takes two report files or --ledger DIR\n{USAGE}"
                )),
            };
            exit(cmd_diff(&old, &new, &gates));
        }
        "--help" | "-h" | "help" => println!("{USAGE}"),
        other => fatal(&format!("unknown command {other:?}\n{USAGE}")),
    }
}
