//! `sqlog-import` — converts a raw statement log into the `sqlog-log` TSV
//! format the framework consumes.
//!
//! Input: one record per line, fields separated by `--sep` (default tab):
//!
//! ```text
//! <timestamp> [<user>] <statement...>
//! ```
//!
//! The timestamp accepts epoch seconds/milliseconds or
//! `YYYY-MM-DD[ HH:MM:SS]` (the format of SkyServer's published log dumps).
//! With `--no-user`, the second field is part of the statement — matching
//! the paper's minimal-input mode (§6.8: statements and timestamps suffice).
//!
//! ```text
//! sqlog-import --in RAW.log --out LOG.tsv [--sep CHAR] [--no-user]
//!              [--trace-events EVENTS.ndjson]
//! ```
//!
//! `--trace-events PATH` records the import (an `import` span plus entry
//! and skip counters) as NDJSON, in the same event schema as `sqlog-clean`.

use sqlog::logmodel::{write_log_file_atomic, AtomicFile, LogEntry, QueryLog, Timestamp};
use sqlog::obs::Recorder;
use std::io::BufRead;
use std::process::exit;

const USAGE: &str = "usage: sqlog-import --in RAW.log --out LOG.tsv [--sep CHAR] [--no-user]\n\
    [--trace-events EVENTS.ndjson]";

fn main() {
    let mut input = None;
    let mut output = None;
    let mut sep = '\t';
    let mut with_user = true;
    let mut trace_events: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value\n{USAGE}");
                exit(1);
            })
        };
        match arg.as_str() {
            "--in" => input = Some(value("--in")),
            "--out" => output = Some(value("--out")),
            "--sep" => {
                let v = value("--sep");
                sep = v.chars().next().unwrap_or('\t');
            }
            "--no-user" => with_user = false,
            "--trace-events" => trace_events = Some(value("--trace-events")),
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                exit(0);
            }
            other => {
                eprintln!("error: unknown option {other}\n{USAGE}");
                exit(1);
            }
        }
    }
    let (Some(input), Some(output)) = (input, output) else {
        eprintln!("error: --in and --out are required\n{USAGE}");
        exit(1);
    };

    // Open the trace sink before the import so a bad path fails fast.
    let mut trace_sink = trace_events.as_deref().map(|p| {
        AtomicFile::create(p).unwrap_or_else(|e| {
            eprintln!("error: cannot create {p}: {e}");
            exit(1);
        })
    });
    let rec = if trace_sink.is_some() {
        Recorder::new()
    } else {
        Recorder::disabled()
    };
    let import_span = rec.span("import");

    let file = std::fs::File::open(&input).unwrap_or_else(|e| {
        eprintln!("error: cannot open {input}: {e}");
        exit(1);
    });
    let reader = std::io::BufReader::new(file);

    let mut log = QueryLog::new();
    let mut skipped = 0usize;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.unwrap_or_else(|e| {
            eprintln!("error: read failed at line {}: {e}", lineno + 1);
            exit(1);
        });
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let Some((ts_text, rest)) = trimmed.split_once(sep) else {
            skipped += 1;
            continue;
        };
        let Ok(timestamp) = ts_text.parse::<Timestamp>() else {
            skipped += 1;
            continue;
        };
        let (user, statement) = if with_user {
            match rest.split_once(sep) {
                Some((u, stmt)) => (Some(u.trim().to_string()), stmt),
                None => (None, rest),
            }
        } else {
            (None, rest)
        };
        let statement = statement.trim();
        if statement.is_empty() {
            skipped += 1;
            continue;
        }
        let mut entry = LogEntry::minimal(log.len() as u64, statement, timestamp);
        if let Some(u) = user.filter(|u| !u.is_empty()) {
            entry = entry.with_user(u);
        }
        log.push(entry);
    }

    log.sort_by_time();
    for (i, e) in log.entries.iter_mut().enumerate() {
        e.id = i as u64;
    }
    if let Err(e) = write_log_file_atomic(&log, &output) {
        eprintln!("error: cannot write {output}: {e}");
        exit(1);
    }
    eprintln!(
        "imported {} entries to {output} ({skipped} lines skipped)",
        log.len()
    );

    rec.counter("import.entries", log.len() as u64);
    rec.counter("import.skipped_lines", skipped as u64);
    if skipped > 0 {
        rec.warning(format!("{skipped} unparsable input lines were skipped"));
    }
    drop(import_span);
    if let Some(mut w) = trace_sink.take() {
        if let Err(e) = rec.write_events(&mut w).and_then(|()| w.commit()) {
            eprintln!("error: cannot write trace events: {e}");
            exit(1);
        }
        eprintln!(
            "wrote trace events to {}",
            trace_events.as_deref().unwrap_or_default()
        );
    }
}
