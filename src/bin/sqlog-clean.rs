//! `sqlog-clean` — the framework as a command-line tool.
//!
//! Reads a query log in the `sqlog-log` TSV format, runs the cleaning
//! pipeline, writes the clean (and optionally removal) log, and prints the
//! Table-5-style statistics and the top patterns.
//!
//! ```text
//! sqlog-clean --in LOG.tsv [--out CLEAN.tsv] [--removal REMOVAL.tsv]
//!             [--schema SCHEMA.txt]
//!             [--threshold-ms N | --threshold-unrestricted]
//!             [--session-gap-ms N] [--no-key-axiom] [--parallelism N] [--top K]
//!             [--no-parse-cache] [--lenient] [--quarantine BAD.tsv]
//!             [--trace-events EVENTS.ndjson] [--stats-json STATS.json]
//! ```
//!
//! The built-in SkyServer-like schema provides the key metadata for
//! Definition 11; `--no-key-axiom` drops that requirement (the paper's
//! discussed simplification), which also makes the tool fully
//! schema-independent.
//!
//! By default ingestion is strict: the first malformed or non-UTF-8 input
//! line aborts with a non-zero exit. `--lenient` skips such lines (copying
//! them verbatim to `--quarantine PATH` when given), reports their counts
//! in the run-health section, and always runs to completion.
//!
//! The template-aware parse cache is on by default: repeated query shapes
//! skip re-parsing, with byte-identical output either way (the cache
//! hit-rate is reported in the statistics). `--no-parse-cache` disables it,
//! e.g. for A/B timing runs.
//!
//! `--trace-events PATH` and `--stats-json PATH` enable the observability
//! recorder (see `sqlog-obs`): the first writes the full span/counter/
//! histogram/warning event stream as NDJSON, the second a machine-readable
//! run report (statistics + aggregated observability). Both sinks are
//! created *before* the run, so an unwritable path fails fast. Without
//! either flag the recorder stays disabled and the pipeline output is
//! byte-identical.

use sqlog::catalog::{parse_schema, skyserver_catalog, Catalog};
use sqlog::core::{
    render_pattern_table, render_statistics, top_patterns, Pipeline, PipelineConfig, RunReport,
};
use sqlog::logmodel::{read_log_with, write_log_file, IngestPolicy, IngestStats, QueryLog};
use sqlog::obs::{ObsReport, Recorder};
use std::io::Write as _;
use std::process::exit;
use std::time::Instant;

struct Args {
    input: String,
    output: Option<String>,
    removal: Option<String>,
    schema: Option<String>,
    config: PipelineConfig,
    top: usize,
    lenient: bool,
    quarantine: Option<String>,
    trace_events: Option<String>,
    stats_json: Option<String>,
}

const USAGE: &str = "usage: sqlog-clean --in LOG.tsv [--out CLEAN.tsv] [--removal REMOVAL.tsv]\n\
    [--schema SCHEMA.txt] [--threshold-ms N | --threshold-unrestricted]\n\
    [--session-gap-ms N] [--no-key-axiom] [--parallelism N] [--top K]\n\
    [--no-parse-cache] [--lenient] [--quarantine BAD.tsv]\n\
    [--trace-events EVENTS.ndjson] [--stats-json STATS.json]";

fn parse_args() -> Result<Args, String> {
    let mut input = None;
    let mut output = None;
    let mut removal = None;
    let mut schema = None;
    let mut config = PipelineConfig::default();
    let mut top = 15usize;
    let mut lenient = false;
    let mut quarantine = None;
    let mut trace_events = None;
    let mut stats_json = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--in" => input = Some(value("--in")?),
            "--out" => output = Some(value("--out")?),
            "--removal" => removal = Some(value("--removal")?),
            "--schema" => schema = Some(value("--schema")?),
            "--threshold-ms" => {
                config.duplicate_threshold_ms = Some(
                    value("--threshold-ms")?
                        .parse()
                        .map_err(|e| format!("bad --threshold-ms: {e}"))?,
                );
            }
            "--threshold-unrestricted" => config.duplicate_threshold_ms = None,
            "--session-gap-ms" => {
                config.session_gap_ms = value("--session-gap-ms")?
                    .parse()
                    .map_err(|e| format!("bad --session-gap-ms: {e}"))?;
            }
            "--no-key-axiom" => config.require_key_attribute = false,
            "--parallelism" => {
                config.parallelism = value("--parallelism")?
                    .parse()
                    .map_err(|e| format!("bad --parallelism: {e}"))?;
            }
            "--top" => {
                top = value("--top")?
                    .parse()
                    .map_err(|e| format!("bad --top: {e}"))?;
            }
            "--no-parse-cache" => config.parse_cache = false,
            "--lenient" => lenient = true,
            "--quarantine" => quarantine = Some(value("--quarantine")?),
            "--trace-events" => trace_events = Some(value("--trace-events")?),
            "--stats-json" => stats_json = Some(value("--stats-json")?),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option {other}")),
        }
    }
    if quarantine.is_some() && !lenient {
        return Err("--quarantine requires --lenient".to_string());
    }
    Ok(Args {
        input: input.ok_or("--in is required")?,
        output,
        removal,
        schema,
        config,
        top,
        lenient,
        quarantine,
        trace_events,
        stats_json,
    })
}

/// Creates an observability sink file up front: an unwritable path must
/// fail before the run, not after minutes of pipeline work.
fn create_sink(path: Option<&str>) -> Result<Option<std::io::BufWriter<std::fs::File>>, String> {
    path.map(|p| {
        std::fs::File::create(p)
            .map(std::io::BufWriter::new)
            .map_err(|e| format!("cannot create {p}: {e}"))
    })
    .transpose()
}

/// Reads the input log under the selected ingestion policy, writing skipped
/// lines to the quarantine sidecar when one was requested.
fn ingest(args: &Args) -> Result<(QueryLog, IngestStats), String> {
    let file =
        std::fs::File::open(&args.input).map_err(|e| format!("cannot read {}: {e}", args.input))?;
    let policy = if args.lenient {
        IngestPolicy::Lenient
    } else {
        IngestPolicy::Strict
    };
    let mut sidecar = match &args.quarantine {
        Some(path) => Some(std::io::BufWriter::new(
            std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?,
        )),
        None => None,
    };
    let (log, stats) = read_log_with(
        std::io::BufReader::new(file),
        policy,
        sidecar.as_mut().map(|w| w as &mut dyn std::io::Write),
    )
    .map_err(|e| format!("cannot read {}: {e}", args.input))?;
    if let Some(w) = &mut sidecar {
        w.flush()
            .map_err(|e| format!("cannot write quarantine sidecar: {e}"))?;
    }
    Ok((log, stats))
}

fn main() {
    let mut args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!("{USAGE}");
            exit(if msg.is_empty() { 0 } else { 2 });
        }
    };

    // Observability: either flag enables the recorder; the sinks are opened
    // before any work so a bad path cannot waste a run.
    let (mut trace_sink, mut stats_sink) = match (
        create_sink(args.trace_events.as_deref()),
        create_sink(args.stats_json.as_deref()),
    ) {
        (Ok(t), Ok(s)) => (t, s),
        (Err(msg), _) | (_, Err(msg)) => {
            eprintln!("error: {msg}");
            exit(1);
        }
    };
    let rec = if trace_sink.is_some() || stats_sink.is_some() {
        Recorder::new()
    } else {
        Recorder::disabled()
    };
    args.config.recorder = rec.clone();

    let t_ingest = Instant::now();
    let (log, ingest_stats) = {
        let _span = rec.span("ingest");
        match ingest(&args) {
            Ok(r) => r,
            Err(msg) => {
                eprintln!("error: {msg}");
                exit(1);
            }
        }
    };
    let ingest_ms = t_ingest.elapsed().as_millis() as u64;
    eprintln!("read {} entries from {}", log.len(), args.input);
    if ingest_stats.quarantined > 0 {
        let msg = format!(
            "quarantined {} unreadable lines ({} malformed, {} invalid UTF-8){}",
            ingest_stats.quarantined,
            ingest_stats.malformed,
            ingest_stats.invalid_utf8,
            args.quarantine
                .as_deref()
                .map(|p| format!(", copied to {p}"))
                .unwrap_or_default()
        );
        eprintln!("{msg}");
        // Machine consumers of the trace must not need to scrape stderr.
        rec.warning(msg);
        rec.counter("ingest.quarantined_lines", ingest_stats.quarantined as u64);
        rec.counter(
            "ingest.invalid_utf8_lines",
            ingest_stats.invalid_utf8 as u64,
        );
    }
    rec.counter("ingest.entries", log.len() as u64);

    // A user-supplied schema replaces the built-in SkyServer-like one.
    let catalog: Catalog = match &args.schema {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read {path}: {e}");
                    exit(1);
                }
            };
            match parse_schema(&text) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    exit(1);
                }
            }
        }
        None => skyserver_catalog(),
    };
    let mut result = Pipeline::new(&catalog).with_config(args.config).run(&log);
    result.stats.run_health.quarantined_lines = ingest_stats.quarantined;
    result.stats.run_health.invalid_utf8_lines = ingest_stats.invalid_utf8;
    result.stats.timings.ingest_ms = ingest_ms;
    result.stats.timings.total_ms += ingest_ms;

    // Render once under the report span to measure its cost, fold the
    // measurement into the timings, then render again so the printed (and
    // serialized) report carries its own cost.
    let t_report = Instant::now();
    let rows = {
        let _span = rec.span("report");
        let _ = render_statistics(&result.stats);
        top_patterns(&result.mined, &result.marks, &result.store, args.top, 2)
    };
    let report_ms = t_report.elapsed().as_millis() as u64;
    result.stats.timings.report_ms = report_ms;
    result.stats.timings.total_ms += report_ms;

    println!("{}", render_statistics(&result.stats));
    println!("top {} patterns (antipatterns marked):", args.top);
    println!("{}", render_pattern_table(&rows));

    if let Some(path) = &args.output {
        if let Err(e) = write_log_file(&result.clean_log, path) {
            eprintln!("error: cannot write {path}: {e}");
            exit(1);
        }
        eprintln!(
            "wrote clean log ({} entries) to {path}",
            result.clean_log.len()
        );
    }
    if let Some(path) = &args.removal {
        if let Err(e) = write_log_file(&result.removal_log, path) {
            eprintln!("error: cannot write {path}: {e}");
            exit(1);
        }
        eprintln!(
            "wrote removal log ({} entries) to {path}",
            result.removal_log.len()
        );
    }

    if let Some(w) = &mut trace_sink {
        if let Err(e) = rec.write_events(w).and_then(|()| w.flush()) {
            eprintln!("error: cannot write trace events: {e}");
            exit(1);
        }
        eprintln!(
            "wrote trace events to {}",
            args.trace_events.as_deref().unwrap_or_default()
        );
    }
    if let Some(w) = &mut stats_sink {
        let report = RunReport {
            stats: result.stats.clone(),
            obs: ObsReport::from_recorder(&rec),
        };
        if let Err(e) = writeln!(w, "{}", report.render()).and_then(|()| w.flush()) {
            eprintln!("error: cannot write stats json: {e}");
            exit(1);
        }
        eprintln!(
            "wrote run report to {}",
            args.stats_json.as_deref().unwrap_or_default()
        );
    }
}
