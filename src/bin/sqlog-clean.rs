//! `sqlog-clean` — the framework as a command-line tool.
//!
//! Reads a query log in the `sqlog-log` TSV format, runs the cleaning
//! pipeline, writes the clean (and optionally removal) log, and prints the
//! Table-5-style statistics and the top patterns.
//!
//! ```text
//! sqlog-clean --in LOG.tsv [--out CLEAN.tsv] [--removal REMOVAL.tsv]
//!             [--schema SCHEMA.txt]
//!             [--run-dir DIR | --resume DIR]
//!             [--threshold-ms N | --threshold-unrestricted]
//!             [--session-gap-ms N] [--no-key-axiom] [--parallelism N] [--top K]
//!             [--no-parse-cache] [--no-dedup-prefilter] [--no-solve-batching]
//!             [--lenient] [--quarantine BAD.tsv]
//!             [--trace-events EVENTS.ndjson] [--stats-json STATS.json]
//! ```
//!
//! The built-in SkyServer-like schema provides the key metadata for
//! Definition 11; `--no-key-axiom` drops that requirement (the paper's
//! discussed simplification), which also makes the tool fully
//! schema-independent.
//!
//! By default ingestion is strict: the first malformed or non-UTF-8 input
//! line aborts with a non-zero exit. `--lenient` skips such lines (copying
//! them verbatim to `--quarantine PATH` when given), reports their counts
//! in the run-health section, and always runs to completion.
//!
//! `--run-dir DIR` makes the run **crash-safe**: every pipeline stage
//! checkpoints its output into `DIR/checkpoints/` atomically as it
//! completes, and `DIR/MANIFEST.json` records the configuration
//! fingerprint and input hash. After a crash (power loss, OOM kill,
//! SIGKILL), `--resume DIR` picks the run up at the last completed stage
//! and produces output byte-identical to an uninterrupted run — at any
//! `--parallelism`, parse cache on or off. A resume refuses to start if
//! the input file or the semantic configuration changed; a corrupted or
//! torn checkpoint is reported and its stage simply re-runs. In lenient
//! mode the quarantine sidecar defaults to `DIR/quarantine.tsv`.
//!
//! All final artifacts (clean log, removal log, quarantine sidecar, trace
//! events, stats JSON) are written atomically — temp file, fsync, rename —
//! so a crash mid-write never leaves a torn file at the destination.
//!
//! Exit codes: **0** = clean success; **2** = the run completed but
//! degraded (quarantined lines, limit-rejected statements, poison records
//! or sessions, recovered shards — see the run-health section); **1** =
//! fatal error (bad usage, unreadable input, refused resume). A resumed
//! run that lost nothing exits 0: interruptions alone are not degradation.
//!
//! The template-aware parse cache is on by default: repeated query shapes
//! skip re-parsing, with byte-identical output either way (the cache
//! hit-rate is reported in the statistics). `--no-parse-cache` disables it,
//! e.g. for A/B timing runs.
//!
//! `--trace-events PATH` and `--stats-json PATH` enable the observability
//! recorder (see `sqlog-obs`): the first writes the full span/counter/
//! histogram/warning event stream as NDJSON, the second a machine-readable
//! run report (statistics + aggregated observability). Both sinks are
//! created *before* the run, so an unwritable path fails fast. Without
//! any observability flag the recorder stays disabled and the pipeline
//! output is byte-identical.
//!
//! `--progress` streams per-stage progress lines (items done, throughput,
//! ETA; checkpoint-restored stages render as skipped) to stderr while the
//! run executes. `--ledger DIR` appends a compact, schema-versioned run
//! summary — the run report plus config fingerprint, input hash, and
//! machine info — to a durable history directory that `sqlog-report` can
//! inspect and diff. Either flag enables the recorder; outputs stay
//! byte-identical.

use sqlog::catalog::{parse_schema, skyserver_catalog, Catalog};
use sqlog::core::checkpoint::{
    config_fingerprint, hash_file, run_checkpointed, CheckpointOptions, RunDir,
};
use sqlog::core::{
    ingest_file_traced, render_pattern_table, render_statistics, top_patterns, Pipeline,
    PipelineConfig, RunReport,
};
use sqlog::logmodel::{write_log_file_atomic, AtomicFile, IngestPolicy, IngestStats, QueryLog};
use sqlog::obs::{mem, Ledger, LedgerEntry, MachineInfo, ObsReport, Recorder, LEDGER_SCHEMA};
use std::io::Write as _;
use std::path::PathBuf;
use std::process::exit;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

struct Args {
    input: String,
    output: Option<String>,
    removal: Option<String>,
    schema: Option<String>,
    run_dir: Option<String>,
    resume: Option<String>,
    config: PipelineConfig,
    top: usize,
    lenient: bool,
    quarantine: Option<String>,
    trace_events: Option<String>,
    stats_json: Option<String>,
    progress: bool,
    ledger: Option<String>,
}

const USAGE: &str = "usage: sqlog-clean --in LOG.tsv [--out CLEAN.tsv] [--removal REMOVAL.tsv]\n\
    [--schema SCHEMA.txt] [--run-dir DIR | --resume DIR]\n\
    [--threshold-ms N | --threshold-unrestricted]\n\
    [--session-gap-ms N] [--no-key-axiom] [--parallelism N] [--top K]\n\
    [--no-parse-cache] [--no-dedup-prefilter] [--no-solve-batching]\n\
    [--lenient] [--quarantine BAD.tsv]\n\
    [--trace-events EVENTS.ndjson] [--stats-json STATS.json]\n\
    [--progress] [--ledger DIR]\n\
\n\
exit codes: 0 = clean success, 2 = completed but degraded (see run\n\
health), 1 = fatal error";

fn parse_args() -> Result<Args, String> {
    let mut input = None;
    let mut output = None;
    let mut removal = None;
    let mut schema = None;
    let mut run_dir = None;
    let mut resume = None;
    let mut config = PipelineConfig::default();
    let mut top = 15usize;
    let mut lenient = false;
    let mut quarantine = None;
    let mut trace_events = None;
    let mut stats_json = None;
    let mut progress = false;
    let mut ledger = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--in" => input = Some(value("--in")?),
            "--out" => output = Some(value("--out")?),
            "--removal" => removal = Some(value("--removal")?),
            "--schema" => schema = Some(value("--schema")?),
            "--run-dir" => run_dir = Some(value("--run-dir")?),
            "--resume" => resume = Some(value("--resume")?),
            "--threshold-ms" => {
                config.duplicate_threshold_ms = Some(
                    value("--threshold-ms")?
                        .parse()
                        .map_err(|e| format!("bad --threshold-ms: {e}"))?,
                );
            }
            "--threshold-unrestricted" => config.duplicate_threshold_ms = None,
            "--session-gap-ms" => {
                config.session_gap_ms = value("--session-gap-ms")?
                    .parse()
                    .map_err(|e| format!("bad --session-gap-ms: {e}"))?;
            }
            "--no-key-axiom" => config.require_key_attribute = false,
            "--parallelism" => {
                config.parallelism = value("--parallelism")?
                    .parse()
                    .map_err(|e| format!("bad --parallelism: {e}"))?;
            }
            "--top" => {
                top = value("--top")?
                    .parse()
                    .map_err(|e| format!("bad --top: {e}"))?;
            }
            "--no-parse-cache" => config.parse_cache = false,
            "--no-dedup-prefilter" => config.dedup_prefilter = false,
            "--no-solve-batching" => config.solve_batching = false,
            "--lenient" => lenient = true,
            "--quarantine" => quarantine = Some(value("--quarantine")?),
            "--trace-events" => trace_events = Some(value("--trace-events")?),
            "--stats-json" => stats_json = Some(value("--stats-json")?),
            "--progress" => progress = true,
            "--ledger" => ledger = Some(value("--ledger")?),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option {other}")),
        }
    }
    if quarantine.is_some() && !lenient {
        return Err("--quarantine requires --lenient".to_string());
    }
    if run_dir.is_some() && resume.is_some() {
        return Err("--run-dir starts fresh and --resume continues; pick one".to_string());
    }
    Ok(Args {
        input: input.ok_or("--in is required")?,
        output,
        removal,
        schema,
        run_dir,
        resume,
        config,
        top,
        lenient,
        quarantine,
        trace_events,
        stats_json,
        progress,
        ledger,
    })
}

/// Formats one live progress line for the current stage.
fn progress_line(p: &sqlog::obs::ProgressSnapshot) -> String {
    let mut line = if p.total > 0 {
        format!(
            "progress: {:<8} {}/{} ({:.1}%)",
            p.stage,
            p.done,
            p.total,
            p.done as f64 * 100.0 / p.total as f64
        )
    } else {
        format!("progress: {:<8} {} items", p.stage, p.done)
    };
    let rate = p.throughput_per_sec();
    if p.done > 0 && rate > 0.0 {
        line.push_str(&format!("  {rate:.0}/s"));
    }
    if let Some(eta) = p.eta_secs() {
        line.push_str(&format!("  ETA {eta:.1}s"));
    }
    line
}

/// Spawns the `--progress` printer: polls the recorder's stage gauge and
/// writes a stderr line whenever it advances. The poller only reads —
/// output artifacts stay byte-identical with or without it.
fn spawn_progress_printer(rec: Recorder, stop: Arc<AtomicBool>) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let mut last = (0u64, u64::MAX);
        let mut skipped_seen = 0usize;
        // Skipped stages are consumed from the recorder's log rather than
        // the live gauge: several stages can be restored between two polls,
        // and each must still surface exactly once.
        let drain_skipped = |seen: &mut usize| {
            for stage in rec.skipped_stages().iter().skip(*seen) {
                eprintln!("progress: {stage:<8} skipped (restored from checkpoint)");
                *seen += 1;
            }
        };
        while !stop.load(Ordering::Relaxed) {
            drain_skipped(&mut skipped_seen);
            if let Some(p) = rec.progress() {
                if !p.skipped && (p.seq, p.done) != last {
                    last = (p.seq, p.done);
                    eprintln!("{}", progress_line(&p));
                }
            }
            std::thread::sleep(Duration::from_millis(100));
        }
        // Final state, so the last stage's completion is never swallowed.
        drain_skipped(&mut skipped_seen);
        if let Some(p) = rec.progress() {
            if !p.skipped && (p.seq, p.done) != last {
                eprintln!("{}", progress_line(&p));
            }
        }
    })
}

/// Creates an observability sink up front as an atomic file: an unwritable
/// path must fail before the run, not after minutes of pipeline work, and
/// a crash mid-write must not leave a torn artifact at the destination.
fn create_sink(path: Option<&str>) -> Result<Option<AtomicFile>, String> {
    path.map(|p| AtomicFile::create(p).map_err(|e| format!("cannot create {p}: {e}")))
        .transpose()
}

/// Reads the input log under the selected ingestion policy — segmented and
/// parallel (`--threads` / one segment per core), byte-identical to the
/// sequential reader — writing skipped lines to the quarantine sidecar when
/// one was requested. (The checkpointed path does its own ingestion inside
/// the run directory.)
fn ingest(
    args: &Args,
    parent: Option<sqlog::obs::SpanId>,
) -> Result<(QueryLog, IngestStats), String> {
    let policy = if args.lenient {
        IngestPolicy::Lenient
    } else {
        IngestPolicy::Strict
    };
    let mut sidecar = match &args.quarantine {
        Some(path) => {
            Some(AtomicFile::create(path).map_err(|e| format!("cannot create {path}: {e}"))?)
        }
        None => None,
    };
    let (log, stats) = ingest_file_traced(
        std::path::Path::new(&args.input),
        policy,
        args.config.parallelism,
        sidecar.as_mut().map(|w| w as &mut dyn std::io::Write),
        &args.config.recorder,
        parent,
    )
    .map_err(|e| format!("cannot read {}: {e}", args.input))?;
    if let Some(s) = sidecar {
        s.commit()
            .map_err(|e| format!("cannot write quarantine sidecar: {e}"))?;
    }
    Ok((log, stats))
}

fn main() {
    let mut args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!("{USAGE}");
            exit(if msg.is_empty() { 0 } else { 1 });
        }
    };

    // Observability: either flag enables the recorder; the sinks are opened
    // before any work so a bad path cannot waste a run.
    let (mut trace_sink, mut stats_sink) = match (
        create_sink(args.trace_events.as_deref()),
        create_sink(args.stats_json.as_deref()),
    ) {
        (Ok(t), Ok(s)) => (t, s),
        (Err(msg), _) | (_, Err(msg)) => {
            eprintln!("error: {msg}");
            exit(1);
        }
    };
    // Any observability consumer enables the recorder; outputs are pinned
    // byte-identical either way.
    let rec =
        if trace_sink.is_some() || stats_sink.is_some() || args.progress || args.ledger.is_some() {
            Recorder::new()
        } else {
            Recorder::disabled()
        };
    args.config.recorder = rec.clone();

    // The ledger directory is opened before the run: an unwritable history
    // must fail fast, like the other sinks.
    let ledger = match args.ledger.as_deref().map(Ledger::open).transpose() {
        Ok(l) => l,
        Err(e) => {
            eprintln!(
                "error: cannot open ledger {}: {e}",
                args.ledger.as_deref().unwrap_or_default()
            );
            exit(1);
        }
    };

    let progress_stop = Arc::new(AtomicBool::new(false));
    let progress_printer = args
        .progress
        .then(|| spawn_progress_printer(rec.clone(), Arc::clone(&progress_stop)));

    // A user-supplied schema replaces the built-in SkyServer-like one. The
    // catalog is needed up front: the run-directory manifest fingerprints it.
    let catalog: Catalog = match &args.schema {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read {path}: {e}");
                    exit(1);
                }
            };
            match parse_schema(&text) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    exit(1);
                }
            }
        }
        None => skyserver_catalog(),
    };

    // Captured before the config moves into the pipeline: the ledger entry
    // carries the same semantic fingerprint as a checkpoint manifest would.
    let cfg_fp = config_fingerprint(&args.config, &catalog);

    let run_dir = match (&args.run_dir, &args.resume) {
        (Some(path), None) => match RunDir::create(path) {
            Ok(d) => Some((d, false)),
            Err(msg) => {
                eprintln!("error: {msg}");
                exit(1);
            }
        },
        (None, Some(path)) => match RunDir::open(path) {
            Ok(d) => Some((d, true)),
            Err(msg) => {
                eprintln!("error: {msg}");
                exit(1);
            }
        },
        _ => None,
    };

    // Which stages a resume restored from checkpoints (for the stdout
    // summary; the per-stage detail also goes to stderr below).
    let mut loaded_stages: Vec<&'static str> = Vec::new();
    let mut result = match &run_dir {
        // --- crash-safe path: checkpoint every stage into the run dir ---
        Some((dir, resume)) => {
            let policy = if args.lenient {
                IngestPolicy::Lenient
            } else {
                IngestPolicy::Strict
            };
            let opts = CheckpointOptions {
                input: PathBuf::from(&args.input),
                policy,
                quarantine: args
                    .quarantine
                    .as_ref()
                    .map(PathBuf::from)
                    .or_else(|| args.lenient.then(|| dir.quarantine_path())),
                resume: *resume,
                stop_after: None,
            };
            let pipeline = Pipeline::new(&catalog).with_config(args.config.clone());
            let outcome = match run_checkpointed(&pipeline, dir, &opts) {
                Ok(Some(o)) => o,
                Ok(None) => unreachable!("no stop_after requested"),
                Err(msg) => {
                    eprintln!("error: {msg}");
                    exit(1);
                }
            };
            eprintln!(
                "read {} entries from {}",
                outcome.ingest_stats.entries, args.input
            );
            if !outcome.loaded_stages.is_empty() {
                eprintln!(
                    "resumed from {}: loaded checkpoints for {}",
                    dir.root().display(),
                    outcome.loaded_stages.join(", ")
                );
                loaded_stages = outcome.loaded_stages.clone();
            }
            if outcome.ingest_stats.quarantined > 0 {
                eprintln!(
                    "quarantined {} unreadable lines ({} malformed, {} invalid UTF-8)",
                    outcome.ingest_stats.quarantined,
                    outcome.ingest_stats.malformed,
                    outcome.ingest_stats.invalid_utf8
                );
            }
            rec.counter("ingest.entries", outcome.ingest_stats.entries as u64);
            outcome.result
        }
        // --- plain in-memory path (the seed behavior) ---
        None => {
            let t_ingest = Instant::now();
            let (log, ingest_stats) = {
                rec.stage_begin("ingest", 0);
                let span = rec.span("ingest");
                match ingest(&args, span.id()) {
                    Ok(r) => r,
                    Err(msg) => {
                        eprintln!("error: {msg}");
                        exit(1);
                    }
                }
            };
            let ingest_ms = t_ingest.elapsed().as_millis() as u64;
            eprintln!("read {} entries from {}", log.len(), args.input);
            if ingest_stats.quarantined > 0 {
                let msg = format!(
                    "quarantined {} unreadable lines ({} malformed, {} invalid UTF-8){}",
                    ingest_stats.quarantined,
                    ingest_stats.malformed,
                    ingest_stats.invalid_utf8,
                    args.quarantine
                        .as_deref()
                        .map(|p| format!(", copied to {p}"))
                        .unwrap_or_default()
                );
                eprintln!("{msg}");
                // Machine consumers of the trace must not need to scrape stderr.
                rec.warning(msg);
                rec.counter("ingest.quarantined_lines", ingest_stats.quarantined as u64);
                rec.counter(
                    "ingest.invalid_utf8_lines",
                    ingest_stats.invalid_utf8 as u64,
                );
            }
            rec.counter("ingest.entries", log.len() as u64);

            let mut result = Pipeline::new(&catalog).with_config(args.config).run(&log);
            result.stats.run_health.quarantined_lines = ingest_stats.quarantined;
            result.stats.run_health.invalid_utf8_lines = ingest_stats.invalid_utf8;
            result.stats.timings.ingest_ms = ingest_ms;
            result.stats.timings.total_ms += ingest_ms;
            result
        }
    };

    // The pipeline is done: account the process's peak footprint before
    // the report is built, so it lands in --stats-json and the ledger.
    if let Some(peak) = mem::peak_rss_bytes() {
        rec.counter("mem.peak_rss_bytes", peak);
    }

    // Render once under the report span to measure its cost, fold the
    // measurement into the timings, then render again so the printed (and
    // serialized) report carries its own cost.
    let t_report = Instant::now();
    let rows = {
        rec.stage_begin("report", 0);
        let _span = rec.span("report");
        let _ = render_statistics(&result.stats);
        top_patterns(&result.mined, &result.marks, &result.store, args.top, 2)
    };
    let report_ms = t_report.elapsed().as_millis() as u64;
    result.stats.timings.report_ms = report_ms;
    result.stats.timings.total_ms += report_ms;

    // The run body is over — stop the live progress stream before the
    // final report so its lines don't interleave with artifact messages.
    progress_stop.store(true, Ordering::Relaxed);
    if let Some(h) = progress_printer {
        let _ = h.join();
    }

    // render_statistics already reports the interruption count in its run
    // health row; the stage list rides below it in the same table layout.
    let resume_row = (!loaded_stages.is_empty()).then(|| {
        format!(
            "{:<44} {} stage{} ({})",
            "Resumed from checkpoints",
            loaded_stages.len(),
            if loaded_stages.len() == 1 { "" } else { "s" },
            loaded_stages.join(", ")
        )
    });
    print!("{}", render_statistics(&result.stats));
    if let Some(row) = &resume_row {
        println!("{row}");
    }
    println!();
    println!("top {} patterns (antipatterns marked):", args.top);
    println!("{}", render_pattern_table(&rows));

    if let Some(path) = &args.output {
        if let Err(e) = write_log_file_atomic(&result.clean_log, path) {
            eprintln!("error: cannot write {path}: {e}");
            exit(1);
        }
        eprintln!(
            "wrote clean log ({} entries) to {path}",
            result.clean_log.len()
        );
    }
    if let Some(path) = &args.removal {
        if let Err(e) = write_log_file_atomic(&result.removal_log, path) {
            eprintln!("error: cannot write {path}: {e}");
            exit(1);
        }
        eprintln!(
            "wrote removal log ({} entries) to {path}",
            result.removal_log.len()
        );
    }

    if let Some(mut w) = trace_sink.take() {
        if let Err(e) = rec.write_events(&mut w).and_then(|()| w.commit()) {
            eprintln!("error: cannot write trace events: {e}");
            exit(1);
        }
        eprintln!(
            "wrote trace events to {}",
            args.trace_events.as_deref().unwrap_or_default()
        );
    }
    // One RunReport serves both consumers: the stats JSON sink and the
    // ledger entry.
    let run_report = (stats_sink.is_some() || ledger.is_some()).then(|| RunReport {
        stats: result.stats.clone(),
        obs: ObsReport::from_recorder(&rec),
    });
    if let Some(mut w) = stats_sink.take() {
        let report = run_report.as_ref().expect("built when a sink exists");
        if let Err(e) = writeln!(w, "{}", report.render()).and_then(|()| w.commit()) {
            eprintln!("error: cannot write stats json: {e}");
            exit(1);
        }
        eprintln!(
            "wrote run report to {}",
            args.stats_json.as_deref().unwrap_or_default()
        );
    }

    if let Some(ledger) = &ledger {
        let report = run_report.as_ref().expect("built when a ledger exists");
        // Input identity reuses the checkpoint manifest's hashing; a
        // vanished input (raced away mid-run) degrades to zeros rather
        // than losing the entry.
        let (input_bytes, input_fnv) =
            hash_file(std::path::Path::new(&args.input)).unwrap_or((0, 0));
        let entry = LedgerEntry {
            schema: LEDGER_SCHEMA,
            kind: "clean".to_string(),
            created_unix_ms: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0),
            config_fingerprint: cfg_fp,
            input_bytes,
            input_fnv,
            machine: MachineInfo::capture(),
            report: report.to_json(),
        };
        match ledger.append(&entry) {
            Ok(path) => eprintln!("appended run ledger entry {}", path.display()),
            Err(e) => {
                eprintln!(
                    "error: cannot append to ledger {}: {e}",
                    ledger.dir().display()
                );
                exit(1);
            }
        }
    }

    // Every artifact is on disk: a checkpointed run is now complete, and a
    // later --resume of this directory replays checkpoints without counting
    // another interruption.
    if let Some((dir, _)) = &run_dir {
        if let Err(msg) = dir.mark_completed() {
            eprintln!("error: {msg}");
            exit(1);
        }
    }

    if result.stats.run_health.completed_degraded() {
        eprintln!("run completed degraded (see run health above); exiting 2");
        exit(2);
    }
}
